// Command eblreport regenerates the paper's entire evaluation in one run:
// all three trials, every in-text statistics table, the §III.E analyses,
// and compact ASCII renderings of the figure shapes. Its output is the
// source of the measured numbers in EXPERIMENTS.md.
//
//	eblreport                        # the full report
//	eblreport -j 4                   # fan independent runs across 4 workers
//	eblreport -stats                 # plus per-trial telemetry summaries
//	eblreport -stats-json report.ndjson  # machine-readable trial metrics
//	eblreport -degrade               # only the fault-injection degradation report
//	eblreport -latency-breakdown     # per-component delay decomposition, 802.11 vs TDMA
//	eblreport -tolerance 0.05        # adaptive precision: replicate until every 95% CI is ±5%
//	eblreport -tolerance 0.02 -max-reps 32  # same, with an explicit replication budget
//
// The degradation report sweeps the fault layer's loss axis per MAC and
// tabulates how delay, throughput, and the braking-safety margin erode as
// the channel worsens — the fault-injection analogue of §III.E.
//
// The three trials and the replication study's seeded runs execute on a
// bounded worker pool (-j, default one worker per CPU); results are
// reduced in a fixed order, so the report is byte-identical at every -j.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vanetsim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eblreport:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("eblreport", flag.ContinueOnError)
	var (
		jobs     = fs.Int("j", 0, "concurrent simulation runs (0 = one per CPU); output is identical at every -j")
		stats    = fs.Bool("stats", false, "append per-trial telemetry summaries to the report")
		statsJSN = fs.String("stats-json", "", "write all trials' telemetry as NDJSON to this path")
		degrade  = fs.Bool("degrade", false, "print only the fault-injection degradation report")
		degCSV   = fs.String("degrade-csv", "", "also write the degradation points as CSV to this path")
		checkInv  = fs.Bool("check", false, "arm the runtime invariant checker on every run; non-zero exit on any violation")
		latency   = fs.Bool("latency-breakdown", false, "print only the span-derived latency decomposition (TDMA vs 802.11)")
		tolerance = fs.Float64("tolerance", 0, "print only the adaptive-precision report: replicate until every 95% CI is within this relative half-width (e.g. 0.05 = ±5%)")
		maxReps   = fs.Int("max-reps", 0, "replication budget for -tolerance (0 = 64); the achieved bound is reported if the budget is hit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxReps != 0 && *tolerance == 0 {
		return fmt.Errorf("-max-reps only applies with -tolerance")
	}
	if *tolerance != 0 {
		return toleranceReport(out, *jobs, *tolerance, *maxReps, *checkInv)
	}
	if *latency {
		return latencyBreakdownReport(out, *jobs)
	}
	if *degrade {
		return degradationReport(out, *jobs, *degCSV, *checkInv)
	}
	return reportWith(out, *jobs, *stats, *statsJSN, *checkInv)
}

// toleranceReport is the adaptive-precision evaluation: replications are
// added in batches until every watched 95% CI meets the requested
// relative half-width (or the budget runs out), and two common-random-
// numbers paired comparisons quantify what seed sharing buys. Output is
// byte-identical at every -j and batch size.
func toleranceReport(out io.Writer, jobs int, tol float64, maxReps int, check bool) error {
	fmt.Fprintln(out, "Adaptive-precision replication — run until the CI bound is met")
	fmt.Fprintln(out, "==============================================================")

	pool := vanetsim.Pool{Workers: jobs}

	cfg3 := vanetsim.Trial3()
	cfg3.Duration = vanetsim.Seconds(60)
	cfg3.Check = check
	fmt.Fprintf(out, "\n--- %v: sequential stopping on all four metrics ---\n", cfg3.Name)
	st, err := vanetsim.RunReplicationsTolerance(cfg3, tol, vanetsim.ToleranceOptions{
		MaxReps: maxReps, Pool: pool,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, st.String())

	// The paper's MAC comparison under common random numbers. TDMA is
	// deterministic across seeds at this scale, so the paired interval
	// equals the unpaired one — CRN pays off only when both arms share
	// seed-driven noise, which the report states rather than hides.
	cfg1 := vanetsim.Trial1()
	cfg1.Duration = vanetsim.Seconds(60)
	cfg1.Check = check
	fmt.Fprintln(out, "\n--- CRN paired comparison: TDMA (trial1) vs 802.11 (trial3) ---")
	mac, err := vanetsim.RunPairedReplicationsTolerance(cfg1, cfg3, tol, vanetsim.ToleranceOptions{
		MaxReps: maxReps, Pool: pool,
		Metrics: []string{vanetsim.MetricDelay, vanetsim.MetricTput},
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, mac.String())

	// A packet-size A/B where both arms are 802.11: the same seed drives
	// the same contention pattern in both, so the paired interval
	// tightens. The 40 s window (comms start at t ≈ 20 s) concentrates
	// the seed-driven congestion transient both arms share; over longer
	// runs the steady state dominates and the arms decorrelate.
	cfgA := cfg3
	cfgA.Duration = vanetsim.Seconds(40)
	cfg500 := cfgA
	cfg500.Name = "trial3-500B"
	cfg500.PacketSize = 500
	fmt.Fprintln(out, "\n--- CRN paired comparison: 802.11 1000 B vs 500 B ---")
	// Five replications minimum so the comparison spans the seeds'
	// congestion variability (clamped to a smaller explicit budget).
	minSize := 5
	if maxReps > 0 && maxReps < minSize {
		minSize = maxReps
	}
	size, err := vanetsim.RunPairedReplicationsTolerance(cfgA, cfg500, tol, vanetsim.ToleranceOptions{
		MinReps: minSize, MaxReps: maxReps, Pool: pool,
		Metrics: []string{vanetsim.MetricTput},
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, size.String())
	fmt.Fprintln(out, "\nA CRN pair tightens only metrics whose noise the arms share; a")
	fmt.Fprintln(out, "deterministic arm (TDMA) leaves the paired width equal to the")
	fmt.Fprintln(out, "unpaired one, so no reduction factor is printed for it.")
	return nil
}

// latencyBreakdownReport runs the paper's MAC comparison (trial 1 vs
// trial 3) with span tracing armed and decomposes each MAC's mean one-way
// delay into the mechanisms behind it: interface-queue residency, MAC
// contention or slot wait, airtime, retransmit gaps, and AODV rerouting.
func latencyBreakdownReport(out io.Writer, jobs int) error {
	fmt.Fprintln(out, "Latency decomposition — span-traced delay components per MAC")
	fmt.Fprintln(out, "=============================================================")

	cfgs := []vanetsim.TrialConfig{vanetsim.Trial1(), vanetsim.Trial3()}
	for i := range cfgs {
		cfgs[i].Spans = true
		// Comms begin around t = 20 s; 40 s covers the interesting window
		// at a fraction of the full run's cost.
		cfgs[i].Duration = vanetsim.Seconds(40)
	}
	all := vanetsim.RunTrials(cfgs, jobs)

	labels := make([]string, len(all))
	aggs := make([]vanetsim.LatencyAggregate, len(all))
	for i, r := range all {
		labels[i] = fmt.Sprintf("%v/%v", r.Config.Name, r.Config.MAC)
		aggs[i] = vanetsim.SummarizeBreakdowns(vanetsim.AnalyzeSpans(r.Spans))
	}
	fmt.Fprintf(out, "\nMean per-delivered-packet components (%.0f s simulated):\n\n",
		float64(cfgs[0].Duration))
	fmt.Fprint(out, vanetsim.FormatLatencyComparison(labels, aggs))
	fmt.Fprintln(out, "\nqueueing = interface-queue residency; contention = TDMA slot wait or")
	fmt.Fprintln(out, "DCF DIFS+backoff; airtime = serialization on the medium; retransmit =")
	fmt.Fprintln(out, "inter-attempt gaps; rerouting = AODV discovery buffering; other =")
	fmt.Fprintln(out, "propagation and inter-layer handoff.")
	return nil
}

// degradationReport sweeps channel loss per MAC and tabulates how delay,
// throughput, and the braking-safety margin erode.
func degradationReport(out io.Writer, jobs int, csvPath string, check bool) error {
	fmt.Fprintln(out, "Degradation under channel loss — fault-injection analogue of §III.E")
	fmt.Fprintln(out, "====================================================================")

	var csv strings.Builder
	for _, mac := range []vanetsim.MACType{vanetsim.MACTDMA, vanetsim.MAC80211} {
		cfg := vanetsim.DefaultDegradation(mac)
		cfg.Jobs = jobs
		cfg.Base.Check = check
		pts := vanetsim.RunDegradation(cfg)
		for _, p := range pts {
			if p.Violations > 0 {
				return fmt.Errorf("%v loss=%g: %d invariant violation(s)", mac, p.LossProb, p.Violations)
			}
		}
		fmt.Fprintf(out, "\n%v MAC (independent losses, %.0f s per point):\n",
			mac, float64(cfg.Base.Duration))
		fmt.Fprint(out, vanetsim.FormatDegradationTable(pts))
		if csvPath != "" {
			for _, line := range strings.SplitAfter(vanetsim.DegradationCSV(pts), "\n") {
				if line == "" || (csv.Len() > 0 && strings.HasPrefix(line, "loss_prob,")) {
					continue // one header for the whole file
				}
				if strings.HasPrefix(line, "loss_prob,") {
					csv.WriteString("mac," + line)
					continue
				}
				csv.WriteString(mac.String() + "," + line)
			}
		}
	}
	fmt.Fprintln(out, "\nmargin_m is the 25 m following gap minus the minimum safe gap at the")
	fmt.Fprintln(out, "measured trailing-vehicle indication delay (negative = crash region).")
	if csvPath != "" {
		return os.WriteFile(csvPath, []byte(csv.String()), 0o644)
	}
	return nil
}

// report writes the plain evaluation report (kept for tests and callers
// that don't need telemetry).
func report(out io.Writer) { _ = reportWith(out, 0, false, "", false) }

func reportWith(out io.Writer, jobs int, stats bool, statsJSON string, check bool) error {
	fmt.Fprintln(out, "Extended Brake Lights reproduction — full evaluation report")
	fmt.Fprintln(out, "============================================================")

	telemetry := stats || statsJSON != ""
	cfgs := []vanetsim.TrialConfig{vanetsim.Trial1(), vanetsim.Trial2(), vanetsim.Trial3()}
	for i := range cfgs {
		cfgs[i].Telemetry = telemetry
		cfgs[i].Check = check
	}
	all := vanetsim.RunTrials(cfgs, jobs)
	for _, r := range all {
		if n := len(r.Violations); n > 0 {
			return fmt.Errorf("%v: %d invariant violation(s), first: %v",
				r.Config.Name, n, r.Violations[0].Error())
		}
	}
	r1, r2, r3 := all[0], all[1], all[2]

	for _, r := range all {
		fmt.Fprintf(out, "\n--- %v: %v MAC, %d-byte packets ---\n",
			r.Config.Name, r.Config.MAC, r.Config.PacketSize)
		fmt.Fprintln(out, "\nOne-way delay:")
		fmt.Fprint(out, vanetsim.FormatDelayTable(vanetsim.DelayTable(r)))
		fmt.Fprintln(out, "\nThroughput:")
		fmt.Fprint(out, vanetsim.FormatThroughputTable(vanetsim.ThroughputTable(r)))
	}

	fmt.Fprintln(out, "\n--- §III.E analysis: packet size (trial 1 vs trial 2) ---")
	d1 := r1.Platoon1.MiddleDelays().Summary().Mean
	d2 := r2.Platoon1.MiddleDelays().Summary().Mean
	t1 := r1.Platoon1.Throughput().Summary(r1.Config.Duration).Mean
	t2 := r2.Platoon1.Throughput().Summary(r2.Config.Duration).Mean
	fmt.Fprintf(out, "delay   trial2/trial1 = %.3f  (paper: essentially unchanged)\n", d2/d1)
	fmt.Fprintf(out, "tput    trial2/trial1 = %.3f  (paper: roughly halved)\n", t2/t1)

	fmt.Fprintln(out, "\n--- §III.E analysis: MAC type (trial 1 vs trial 3) ---")
	d3 := r3.Platoon1.MiddleDelays().Summary().Mean
	t3 := r3.Platoon1.Throughput().Summary(r3.Config.Duration).Mean
	fmt.Fprintf(out, "delay   trial1/trial3 = %.1fx  (paper: significantly less under 802.11)\n", d1/d3)
	fmt.Fprintf(out, "tput    trial3/trial1 = %.1fx  (paper: significantly greater under 802.11)\n", t3/t1)

	fmt.Fprintln(out, "\n--- §III.E stopping-distance analysis ---")
	fmt.Fprint(out, vanetsim.FormatStoppingTable(vanetsim.StoppingTable(all...)))

	fmt.Fprintln(out, "\n--- Feasibility envelope (extension of §III.E) ---")
	fmt.Fprintln(out, "Minimum safe following gap vs speed, with realistic braking")
	fmt.Fprintln(out, "(7 m/s² both vehicles, 0.7 s reaction, 5 m margin), using each")
	fmt.Fprintln(out, "MAC's measured initial-packet indication delay (trailing vehicle):")
	fT, _ := r1.Platoon1.TrailingDelays().First()
	fD, _ := r3.Platoon1.TrailingDelays().First()
	speeds := []float64{10, 15, 20, vanetsim.MPHToMS(50), 25, 30, 35}
	rows := vanetsim.FeasibilityEnvelope(vanetsim.DefaultBrakingModel(), fT, fD, speeds)
	fmt.Fprint(out, vanetsim.FormatEnvelopeTable(rows))

	fmt.Fprintln(out, "\n--- Replication study (methodology upgrade over the paper) ---")
	fmt.Fprintln(out, "The paper analyses one run with batch means; independent seeded")
	fmt.Fprintln(out, "replications capture run-to-run variability too:")
	repCfg := vanetsim.Trial3()
	repCfg.Duration = vanetsim.Seconds(60)
	study, err := vanetsim.RunReplicationsPool(repCfg, []uint64{1, 2, 3, 4, 5}, vanetsim.Pool{Workers: jobs})
	if err != nil {
		return err
	}
	fmt.Fprint(out, study.String())

	fmt.Fprintln(out, "\n--- Figure shapes (ASCII) ---")
	for _, f := range []vanetsim.Figure{
		vanetsim.Fig5(r1), vanetsim.Fig7(r1),
		vanetsim.Fig8(r2), vanetsim.Fig10(r2),
		vanetsim.Fig11(r3), vanetsim.Fig15(r3),
	} {
		fmt.Fprintln(out)
		fmt.Fprint(out, f.ASCII(70, 12))
	}

	if stats {
		fmt.Fprintln(out, "\n--- Telemetry (per trial) ---")
		for _, r := range all {
			fmt.Fprintf(out, "\n%v:\n", r.Config.Name)
			fmt.Fprint(out, r.Telemetry.FormatText())
		}
	}
	if statsJSON != "" {
		f, err := os.Create(statsJSON)
		if err != nil {
			return err
		}
		for _, r := range all {
			if _, err := fmt.Fprintf(f, "{\"kind\":\"run\",\"trial\":%q}\n", r.Config.Name); err != nil {
				f.Close()
				return err
			}
			if err := r.Telemetry.NDJSON(f); err != nil {
				f.Close()
				return err
			}
		}
		return f.Close()
	}
	return nil
}
