// Command vanetsimd serves the simulator over HTTP: scenario configs
// in, deterministic result artifacts out, with a persistent
// content-addressed cache in between.
//
//	vanetsimd -addr :8077 -cache-dir /var/cache/vanetsimd
//	vanetsimd -cache-budget 256MiB -workers 4 -rate 5
//
// Endpoints:
//
//	POST /v1/run             submit a config (JSON); NDJSON progress stream
//	GET  /v1/results/{hash}  fetch a cached artifact verbatim
//	GET  /v1/status          cache occupancy, queue depth, drain state
//	GET  /metrics            Prometheus text format (service/* metrics)
//	GET  /healthz            liveness (503 while draining)
//
// Because every run is a pure function of its canonical config, a
// cache hit is byte-identical to a fresh run — resubmitting a config
// never re-simulates. SIGINT/SIGTERM drain gracefully: no new jobs
// are admitted, in-flight simulations finish and are cached, then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"vanetsim/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vanetsimd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vanetsimd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8077", "listen address")
		cacheDir = fs.String("cache-dir", defaultCacheDir(), "result cache directory")
		budget   = fs.String("cache-budget", "0", "cache disk budget, e.g. 512MiB or 1GiB (0 = unlimited)")
		workers  = fs.Int("workers", 2, "concurrently executing simulation jobs")
		depth    = fs.Int("queue-depth", 16, "accepted-but-unstarted job backlog before 503s")
		maxSim   = fs.Float64("max-sim-seconds", 3600, "per-request budget on total simulated seconds")
		maxVeh   = fs.Int("max-vehicles", 4096, "per-request budget on a single run's fleet size")
		rate     = fs.Float64("rate", 0, "per-client run requests per second (0 = unlimited)")
		burst    = fs.Int("rate-burst", 8, "per-client token-bucket burst")
		drainFor = fs.Duration("drain-timeout", 10*time.Minute, "how long shutdown waits for in-flight jobs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	budgetBytes, err := parseBytes(*budget)
	if err != nil {
		return err
	}

	svc, err := service.New(service.Config{
		CacheDir:      *cacheDir,
		CacheBudget:   budgetBytes,
		Workers:       *workers,
		QueueDepth:    *depth,
		MaxSimSeconds: *maxSim,
		MaxVehicles:   *maxVeh,
		RatePerSec:    *rate,
		RateBurst:     *burst,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("vanetsimd: listening on %s, cache %s", *addr, svc.Cache())
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("vanetsimd: %v — draining (new runs refused, in-flight jobs finishing)", sig)
	}

	// Drain order matters: refuse new work first, then let open HTTP
	// streams (clients watching their runs) end naturally, then wait
	// for the queue to finish and cache everything it accepted.
	svc.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	svc.Close()
	log.Printf("vanetsimd: drained, cache %s", svc.Cache())
	return nil
}

// defaultCacheDir places the cache under the user cache root, falling
// back to a fixed temp path for environments without one.
func defaultCacheDir() string {
	if dir, err := os.UserCacheDir(); err == nil {
		return filepath.Join(dir, "vanetsimd")
	}
	return filepath.Join(os.TempDir(), "vanetsimd-cache")
}

// parseBytes reads a human byte size: plain digits, or KiB/MiB/GiB
// (binary) suffixes.
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	upper := strings.ToUpper(strings.TrimSpace(s))
	for suffix, m := range map[string]int64{"KIB": 1 << 10, "MIB": 1 << 20, "GIB": 1 << 30} {
		if strings.HasSuffix(upper, suffix) {
			mult = m
			upper = strings.TrimSpace(strings.TrimSuffix(upper, suffix))
			break
		}
	}
	n, err := strconv.ParseInt(upper, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad byte size %q (want e.g. 0, 1048576, 512MiB, 1GiB)", s)
	}
	return n * mult, nil
}
