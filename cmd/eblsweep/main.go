// Command eblsweep explores the scenario parameter space around the
// paper's fixed operating point (50 mph, 25 m, 3 vehicles): a
// speed × gap safety matrix per MAC built from measured indication
// delays, and a MAC × packet-size performance sweep.
//
//	eblsweep            # both sweeps with defaults
//	eblsweep -safety    # only the safety matrix
//	eblsweep -perf      # only the performance sweep
//	eblsweep -stats     # add per-run telemetry to the progress lines
//	eblsweep -stats-json runs.ndjson  # all runs' metrics, NDJSON
//
// Per-run progress lines go to stderr so the tables on stdout stay
// machine-readable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vanetsim"
)

// progress receives per-run progress lines; it is a variable so tests can
// silence or capture it.
var progress io.Writer = os.Stderr

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eblsweep:", err)
		os.Exit(1)
	}
}

// sweepOpts carries the telemetry switches into the sweep loops.
type sweepOpts struct {
	stats bool      // per-run telemetry summaries on the progress stream
	jsonW io.Writer // NDJSON sink for every run's snapshot (nil = off)
}

func (o sweepOpts) telemetry() bool { return o.stats || o.jsonW != nil }

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("eblsweep", flag.ContinueOnError)
	var (
		safetyOnly = fs.Bool("safety", false, "print only the safety matrix")
		perfOnly   = fs.Bool("perf", false, "print only the performance sweep")
		duration   = fs.Float64("duration", 80, "simulated seconds per run")
		stats      = fs.Bool("stats", false, "add per-run telemetry to the progress lines")
		statsJSN   = fs.String("stats-json", "", "append every run's telemetry as NDJSON to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := sweepOpts{stats: *stats}
	if *statsJSN != "" {
		f, err := os.Create(*statsJSN)
		if err != nil {
			return err
		}
		defer f.Close()
		opts.jsonW = f
	}
	if !*perfOnly {
		if err := safetyMatrix(out, *duration, opts); err != nil {
			return err
		}
	}
	if !*safetyOnly {
		if err := perfSweep(out, *duration, opts); err != nil {
			return err
		}
	}
	return nil
}

// runOne executes one sweep point, reporting progress (and optionally
// telemetry) on the progress stream.
func runOne(sweep string, cfg vanetsim.TrialConfig, opts sweepOpts) (*vanetsim.TrialResult, error) {
	cfg.Telemetry = opts.telemetry()
	r := vanetsim.RunTrial(cfg)
	line := fmt.Sprintf("eblsweep: %s mac=%v size=%d done (%.0f s sim)",
		sweep, cfg.MAC, cfg.PacketSize, float64(cfg.Duration))
	if t := r.Telemetry; t != nil {
		if opts.stats {
			events, _ := t.Counter("sched/events_executed")
			drops, _ := t.Counter("ifq/dropped_total")
			rtx, _ := t.Counter("tcp/retransmits")
			wall, _ := t.Gauge("run/wall_seconds")
			line += fmt.Sprintf(" — %d events, %d ifq drops, %d rtx, %.2fs wall",
				events, drops, rtx, wall.Value)
		}
		if opts.jsonW != nil {
			// A run-header line keys the metric lines that follow to this
			// sweep point.
			if _, err := fmt.Fprintf(opts.jsonW, "{\"kind\":\"run\",\"sweep\":%q,\"mac\":%q,\"packet\":%d}\n",
				sweep, cfg.MAC.String(), cfg.PacketSize); err != nil {
				return nil, err
			}
			if err := t.NDJSON(opts.jsonW); err != nil {
				return nil, err
			}
		}
	}
	fmt.Fprintln(progress, line)
	return r, nil
}

// safetyMatrix measures each MAC's indication delay once, then sweeps
// speed × gap through the braking model.
func safetyMatrix(out io.Writer, duration float64, opts sweepOpts) error {
	fmt.Fprintln(out, "Safety matrix: can the trailing vehicle stop in time?")
	fmt.Fprintln(out, "(7 m/s² braking, 0.7 s reaction, 5 m margin; measured indication delays)")

	delays := map[vanetsim.MACType]float64{}
	for _, mac := range []vanetsim.MACType{vanetsim.MACTDMA, vanetsim.MAC80211} {
		cfg := vanetsim.Trial1()
		cfg.MAC = mac
		cfg.Duration = vanetsim.Seconds(duration)
		r, err := runOne("safety", cfg, opts)
		if err != nil {
			return err
		}
		first, _ := r.Platoon1.TrailingDelays().First()
		delays[mac] = float64(first)
		fmt.Fprintf(out, "  %v indication delay: %.4f s\n", mac, float64(first))
	}

	model := vanetsim.DefaultBrakingModel()
	gaps := []float64{15, 20, 25, 30, 40, 50}
	speeds := []float64{10, 15, 20, 22.4, 25, 30}
	for _, mac := range []vanetsim.MACType{vanetsim.MACTDMA, vanetsim.MAC80211} {
		fmt.Fprintf(out, "\n%v — rows: speed (m/s), cols: gap (m); S = safe, X = crash\n      ", mac)
		for _, g := range gaps {
			fmt.Fprintf(out, "%5.0f", g)
		}
		fmt.Fprintln(out)
		for _, v := range speeds {
			fmt.Fprintf(out, "%6.1f", v)
			need := model.MinSafeGap(v, vanetsim.Seconds(delays[mac]))
			for _, g := range gaps {
				mark := "    S"
				if need > g {
					mark = "    X"
				}
				fmt.Fprint(out, mark)
			}
			fmt.Fprintln(out)
		}
	}
	fmt.Fprintln(out)
	return nil
}

// perfSweep runs the MAC × packet-size grid and prints a CSV-ish table.
func perfSweep(out io.Writer, duration float64, opts sweepOpts) error {
	fmt.Fprintln(out, "Performance sweep: MAC x packet size")
	fmt.Fprintf(out, "%-8s %6s %12s %12s %12s\n", "mac", "bytes", "avg_dly_s", "steady_s", "avg_mbps")
	for _, mac := range []vanetsim.MACType{vanetsim.MACTDMA, vanetsim.MAC80211} {
		for _, size := range []int{250, 500, 1000, 1500} {
			cfg := vanetsim.Trial1()
			cfg.MAC = mac
			cfg.PacketSize = size
			cfg.Duration = vanetsim.Seconds(duration)
			r, err := runOne("perf", cfg, opts)
			if err != nil {
				return err
			}
			d := r.Platoon1.MiddleDelays()
			_, steady := d.SteadyState()
			tput := r.Platoon1.Throughput().Summary(cfg.Duration)
			fmt.Fprintf(out, "%-8v %6d %12.4f %12.4f %12.4f\n",
				mac, size, d.Summary().Mean, steady, tput.Mean)
		}
	}
	return nil
}
