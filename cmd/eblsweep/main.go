// Command eblsweep explores the scenario parameter space around the
// paper's fixed operating point (50 mph, 25 m, 3 vehicles): a
// speed × gap safety matrix per MAC built from measured indication
// delays, and a MAC × packet-size performance sweep.
//
//	eblsweep            # both sweeps with defaults
//	eblsweep -safety    # only the safety matrix
//	eblsweep -perf      # only the performance sweep
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vanetsim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eblsweep:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("eblsweep", flag.ContinueOnError)
	var (
		safetyOnly = fs.Bool("safety", false, "print only the safety matrix")
		perfOnly   = fs.Bool("perf", false, "print only the performance sweep")
		duration   = fs.Float64("duration", 80, "simulated seconds per run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*perfOnly {
		safetyMatrix(out, *duration)
	}
	if !*safetyOnly {
		perfSweep(out, *duration)
	}
	return nil
}

// safetyMatrix measures each MAC's indication delay once, then sweeps
// speed × gap through the braking model.
func safetyMatrix(out io.Writer, duration float64) {
	fmt.Fprintln(out, "Safety matrix: can the trailing vehicle stop in time?")
	fmt.Fprintln(out, "(7 m/s² braking, 0.7 s reaction, 5 m margin; measured indication delays)")

	delays := map[vanetsim.MACType]float64{}
	for _, mac := range []vanetsim.MACType{vanetsim.MACTDMA, vanetsim.MAC80211} {
		cfg := vanetsim.Trial1()
		cfg.MAC = mac
		cfg.Duration = vanetsim.Seconds(duration)
		r := vanetsim.RunTrial(cfg)
		first, _ := r.Platoon1.TrailingDelays().First()
		delays[mac] = float64(first)
		fmt.Fprintf(out, "  %v indication delay: %.4f s\n", mac, float64(first))
	}

	model := vanetsim.DefaultBrakingModel()
	gaps := []float64{15, 20, 25, 30, 40, 50}
	speeds := []float64{10, 15, 20, 22.4, 25, 30}
	for _, mac := range []vanetsim.MACType{vanetsim.MACTDMA, vanetsim.MAC80211} {
		fmt.Fprintf(out, "\n%v — rows: speed (m/s), cols: gap (m); S = safe, X = crash\n      ", mac)
		for _, g := range gaps {
			fmt.Fprintf(out, "%5.0f", g)
		}
		fmt.Fprintln(out)
		for _, v := range speeds {
			fmt.Fprintf(out, "%6.1f", v)
			need := model.MinSafeGap(v, vanetsim.Seconds(delays[mac]))
			for _, g := range gaps {
				mark := "    S"
				if need > g {
					mark = "    X"
				}
				fmt.Fprint(out, mark)
			}
			fmt.Fprintln(out)
		}
	}
	fmt.Fprintln(out)
}

// perfSweep runs the MAC × packet-size grid and prints a CSV-ish table.
func perfSweep(out io.Writer, duration float64) {
	fmt.Fprintln(out, "Performance sweep: MAC x packet size")
	fmt.Fprintf(out, "%-8s %6s %12s %12s %12s\n", "mac", "bytes", "avg_dly_s", "steady_s", "avg_mbps")
	for _, mac := range []vanetsim.MACType{vanetsim.MACTDMA, vanetsim.MAC80211} {
		for _, size := range []int{250, 500, 1000, 1500} {
			cfg := vanetsim.Trial1()
			cfg.MAC = mac
			cfg.PacketSize = size
			cfg.Duration = vanetsim.Seconds(duration)
			r := vanetsim.RunTrial(cfg)
			d := r.Platoon1.MiddleDelays()
			_, steady := d.SteadyState()
			tput := r.Platoon1.Throughput().Summary(cfg.Duration)
			fmt.Fprintf(out, "%-8v %6d %12.4f %12.4f %12.4f\n",
				mac, size, d.Summary().Mean, steady, tput.Mean)
		}
	}
}
