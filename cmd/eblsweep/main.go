// Command eblsweep explores the scenario parameter space around the
// paper's fixed operating point (50 mph, 25 m, 3 vehicles): a
// speed × gap safety matrix per MAC built from measured indication
// delays, and a MAC × packet-size performance sweep.
//
//	eblsweep            # both sweeps with defaults
//	eblsweep -safety    # only the safety matrix
//	eblsweep -perf      # only the performance sweep
//	eblsweep -j 8       # fan runs across 8 workers (default: all CPUs)
//	eblsweep -stats     # add per-run telemetry to the progress lines
//	eblsweep -check     # runtime invariant checker on every run
//	eblsweep -stats-json runs.ndjson  # append all runs' metrics, NDJSON
//
// The degradation sweep drives the fault-injection layer across its three
// axes — stationary loss probability, mean burst length, and an optional
// radio-outage window — and reports delay, throughput, and safety margin
// at each point:
//
//	eblsweep -degrade
//	eblsweep -degrade -degrade-loss 0,0.1,0.3 -degrade-burst 1,4,16
//	eblsweep -degrade -degrade-outage 1:22:5   # node 1 down for [22s, 27s)
//
// Runs fan out across a bounded worker pool (-j), but all output is
// reduced in submission order: stdout tables, the stderr progress
// stream, and the NDJSON file are byte-identical at every -j, so
// parallelism is purely a wall-clock win.
//
// Per-run progress lines go to stderr so the tables on stdout stay
// machine-readable.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"vanetsim"
	"vanetsim/internal/prof"
	"vanetsim/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eblsweep:", err)
		os.Exit(1)
	}
}

// sweepOpts carries the run-engine and telemetry switches into the
// sweep loops.
type sweepOpts struct {
	jobs  int       // worker-pool size; <= 0 means one worker per CPU
	stats bool      // per-run telemetry summaries on the progress stream
	check bool      // arm the runtime invariant checker on every run
	jsonW io.Writer // NDJSON sink for every run's snapshot (nil = off)
	// progress receives per-run progress lines (stderr by default; tests
	// silence or capture it). Writes happen only from the pool's ordered
	// reducer, wrapped in a SyncWriter so no other writer can interleave.
	progress io.Writer
}

func (o sweepOpts) telemetry() bool { return o.stats || o.jsonW != nil }

func run(args []string, out io.Writer) error {
	return runWith(args, out, os.Stderr)
}

// runWith is run with an explicit progress sink, so tests can capture
// or silence the per-run progress stream.
func runWith(args []string, out, progress io.Writer) (err error) {
	fs := flag.NewFlagSet("eblsweep", flag.ContinueOnError)
	var (
		safetyOnly = fs.Bool("safety", false, "print only the safety matrix")
		perfOnly   = fs.Bool("perf", false, "print only the performance sweep")
		duration   = fs.Float64("duration", 80, "simulated seconds per run")
		jobs       = fs.Int("j", 0, "concurrent simulation runs (0 = one per CPU); output is identical at every -j")
		stats      = fs.Bool("stats", false, "add per-run telemetry to the progress lines")
		checkInv   = fs.Bool("check", false, "arm the runtime invariant checker on every run; non-zero exit on any violation")
		statsJSN   = fs.String("stats-json", "", "append every run's telemetry as NDJSON to this path")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile to this path")
		memProf    = fs.String("memprofile", "", "write an allocation profile to this path")
		degrade    = fs.Bool("degrade", false, "run only the fault-injection degradation sweep")
		degLoss    = fs.String("degrade-loss", "0,0.02,0.05,0.1,0.2", "comma-separated stationary loss probabilities")
		degBurst   = fs.String("degrade-burst", "1,4", "comma-separated mean burst lengths (1 = independent losses)")
		degOutage  = fs.String("degrade-outage", "", "radio outage applied at every point, as node:start:duration")
		degMAC     = fs.String("degrade-mac", "tdma", "MAC for the degradation sweep: tdma or 802.11")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if e := stopProf(); err == nil {
			err = e
		}
	}()
	opts := sweepOpts{
		jobs:     *jobs,
		stats:    *stats,
		check:    *checkInv,
		progress: runner.NewSyncWriter(progress),
	}
	if *statsJSN != "" {
		// Append, as documented: repeated invocations accumulate one
		// NDJSON stream rather than clobbering the previous runs.
		f, err := os.OpenFile(*statsJSN, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		opts.jsonW = f
	}
	if *degrade {
		axes, err := parseDegradeAxes(*degLoss, *degBurst, *degOutage, *degMAC)
		if err != nil {
			return err
		}
		return degradeSweep(out, *duration, axes, opts)
	}
	if !*perfOnly {
		if err := safetyMatrix(out, *duration, opts); err != nil {
			return err
		}
	}
	if !*safetyOnly {
		if err := perfSweep(out, *duration, opts); err != nil {
			return err
		}
	}
	return nil
}

// point is one sweep configuration queued for the run engine.
type point struct {
	sweep string
	cfg   vanetsim.TrialConfig
}

// runOut is one finished run plus its rendered side-channel output,
// buffered so the reducer can flush it in submission order.
type runOut struct {
	result   *vanetsim.TrialResult
	progress string       // one progress line, without trailing newline
	ndjson   bytes.Buffer // run-header + telemetry NDJSON block
}

// runPoint executes one sweep point and renders its progress line and
// NDJSON block into buffers. It performs no I/O, so any number of
// points can run concurrently.
func runPoint(p point, opts sweepOpts) (*runOut, error) {
	cfg := p.cfg
	// OR, don't overwrite: sweeps that need telemetry for their own
	// reduction (the degradation sweep reads fault counters) keep it even
	// when no -stats/-stats-json sink asked for it.
	cfg.Telemetry = cfg.Telemetry || opts.telemetry()
	cfg.Check = cfg.Check || opts.check
	o := &runOut{result: vanetsim.RunTrial(cfg)}
	if opts.check {
		if n := len(o.result.Violations); n > 0 {
			return nil, fmt.Errorf("%s mac=%v size=%d: %d invariant violation(s), first: %v",
				p.sweep, cfg.MAC, cfg.PacketSize, n, o.result.Violations[0].Error())
		}
	}
	o.progress = fmt.Sprintf("eblsweep: %s mac=%v size=%d done (%.0f s sim)",
		p.sweep, cfg.MAC, cfg.PacketSize, float64(cfg.Duration))
	if t := o.result.Telemetry; t != nil {
		if opts.stats {
			events, _ := t.Counter("sched/events_executed")
			drops, _ := t.Counter("ifq/dropped_total")
			rtx, _ := t.Counter("tcp/retransmits")
			o.progress += fmt.Sprintf(" — %d events, %d ifq drops, %d rtx, %.2fs wall",
				events, drops, rtx, o.result.WallSeconds)
		}
		if opts.jsonW != nil {
			// A run-header line keys the metric lines that follow to this
			// sweep point.
			fmt.Fprintf(&o.ndjson, "{\"kind\":\"run\",\"sweep\":%q,\"mac\":%q,\"packet\":%d}\n",
				p.sweep, cfg.MAC.String(), cfg.PacketSize)
			if err := t.NDJSON(&o.ndjson); err != nil {
				return nil, err
			}
		}
	}
	return o, nil
}

// sweepAll fans points across the worker pool and reduces in submission
// order: each run's progress line and NDJSON block are flushed, then
// collect sees the result — exactly the byte stream a sequential loop
// produced before the pool existed.
func sweepAll(points []point, opts sweepOpts, collect func(i int, r *vanetsim.TrialResult) error) error {
	pool := runner.Pool{Workers: opts.jobs}
	return runner.Each(pool, len(points),
		func(i int) (*runOut, error) { return runPoint(points[i], opts) },
		func(i int, o *runOut) error {
			if opts.progress != nil {
				if _, err := fmt.Fprintln(opts.progress, o.progress); err != nil {
					return err
				}
			}
			if opts.jsonW != nil {
				if _, err := opts.jsonW.Write(o.ndjson.Bytes()); err != nil {
					return err
				}
			}
			return collect(i, o.result)
		})
}

// safetyMatrix measures each MAC's indication delay once, then sweeps
// speed × gap through the braking model.
func safetyMatrix(out io.Writer, duration float64, opts sweepOpts) error {
	fmt.Fprintln(out, "Safety matrix: can the trailing vehicle stop in time?")
	fmt.Fprintln(out, "(7 m/s² braking, 0.7 s reaction, 5 m margin; measured indication delays)")

	macs := []vanetsim.MACType{vanetsim.MACTDMA, vanetsim.MAC80211}
	points := make([]point, 0, len(macs))
	for _, mac := range macs {
		cfg := vanetsim.Trial1()
		cfg.MAC = mac
		cfg.Duration = vanetsim.Seconds(duration)
		points = append(points, point{sweep: "safety", cfg: cfg})
	}
	delays := map[vanetsim.MACType]float64{}
	err := sweepAll(points, opts, func(i int, r *vanetsim.TrialResult) error {
		mac := macs[i]
		first, ok := r.Platoon1.TrailingDelays().First()
		if !ok {
			// No packet ever reached the trailing vehicle: there is no
			// indication delay, and a matrix built on 0.0 s would claim
			// every speed/gap combination safe. Refuse instead.
			return fmt.Errorf("%v: trailing vehicle received no packet in %.0f s of simulation; cannot measure the indication delay (communication starts at t ≈ 20 s — use a longer -duration)", mac, duration)
		}
		delays[mac] = float64(first)
		fmt.Fprintf(out, "  %v indication delay: %.4f s\n", mac, float64(first))
		return nil
	})
	if err != nil {
		return err
	}

	model := vanetsim.DefaultBrakingModel()
	gaps := []float64{15, 20, 25, 30, 40, 50}
	speeds := []float64{10, 15, 20, 22.4, 25, 30}
	for _, mac := range macs {
		fmt.Fprintf(out, "\n%v — rows: speed (m/s), cols: gap (m); S = safe, X = crash\n      ", mac)
		for _, g := range gaps {
			fmt.Fprintf(out, "%5.0f", g)
		}
		fmt.Fprintln(out)
		for _, v := range speeds {
			fmt.Fprintf(out, "%6.1f", v)
			need := model.MinSafeGap(v, vanetsim.Seconds(delays[mac]))
			for _, g := range gaps {
				mark := "    S"
				if need > g {
					mark = "    X"
				}
				fmt.Fprint(out, mark)
			}
			fmt.Fprintln(out)
		}
	}
	fmt.Fprintln(out)
	return nil
}

// degradeAxes are the parsed fault-injection sweep axes.
type degradeAxes struct {
	losses []float64
	bursts []float64
	outage vanetsim.FaultOutage // Duration 0 = none
	mac    vanetsim.MACType
}

func parseDegradeAxes(loss, burst, outage, mac string) (degradeAxes, error) {
	var a degradeAxes
	var err error
	if a.losses, err = parseFloats(loss); err != nil {
		return a, fmt.Errorf("-degrade-loss: %w", err)
	}
	if a.bursts, err = parseFloats(burst); err != nil {
		return a, fmt.Errorf("-degrade-burst: %w", err)
	}
	if len(a.losses) == 0 || len(a.bursts) == 0 {
		return a, fmt.Errorf("-degrade-loss and -degrade-burst need at least one value")
	}
	if outage != "" {
		if a.outage, err = vanetsim.ParseFaultOutage(outage); err != nil {
			return a, err
		}
	}
	switch strings.ToLower(mac) {
	case "tdma":
		a.mac = vanetsim.MACTDMA
	case "802.11", "dcf", "80211":
		a.mac = vanetsim.MAC80211
	default:
		return a, fmt.Errorf("-degrade-mac: unknown MAC %q", mac)
	}
	return a, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// degradeSweep drives the fault layer across loss × burst-length (with an
// optional fixed outage) and reports how delay, throughput, and the
// braking-safety margin degrade.
func degradeSweep(out io.Writer, duration float64, axes degradeAxes, opts sweepOpts) error {
	fmt.Fprintf(out, "Degradation sweep: %v MAC, loss x burst length", axes.mac)
	if axes.outage.Duration > 0 {
		fmt.Fprintf(out, ", node %v down [%g s, %g s)", axes.outage.Node,
			float64(axes.outage.Start), float64(axes.outage.Start+axes.outage.Duration))
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "%6s %8s %10s %10s %10s %8s %9s %10s %5s\n",
		"burst", "loss", "avg_dly_s", "first_s", "mbps", "rtx", "injected", "margin_m", "safe")

	base := vanetsim.Trial1()
	base.MAC = axes.mac
	if axes.mac == vanetsim.MAC80211 {
		base = vanetsim.Trial3()
	}
	base.Duration = vanetsim.Seconds(duration)
	base.Telemetry = true // the reducer reads fault counters

	type axis struct{ burst, loss float64 }
	var grid []axis
	var points []point
	for _, b := range axes.bursts {
		for _, l := range axes.losses {
			cfg := base
			plan := vanetsim.FaultPlan{}
			if b > 1 {
				plan.Burst = vanetsim.BurstFault(l, b)
			} else {
				plan.Bernoulli = vanetsim.FaultBernoulli{LossProb: l}
			}
			if axes.outage.Duration > 0 {
				plan.Outages = []vanetsim.FaultOutage{axes.outage}
			}
			cfg.Faults = plan
			grid = append(grid, axis{b, l})
			points = append(points, point{sweep: "degrade", cfg: cfg})
		}
	}
	return sweepAll(points, opts, func(i int, r *vanetsim.TrialResult) error {
		p := vanetsim.DegradationPointFrom(base, grid[i].loss, r)
		fmt.Fprintf(out, "%6.0f %8.3f %10.4f %10.4f %10.4f %8d %9d %10.2f %5v\n",
			grid[i].burst, p.LossProb, p.MeanDelayS, p.FirstDelayS,
			p.ThroughputMbps, p.Retransmits, p.Injected, p.SafetyMarginM, p.Safe)
		return nil
	})
}

// perfSweep runs the MAC × packet-size grid and prints a CSV-ish table.
func perfSweep(out io.Writer, duration float64, opts sweepOpts) error {
	fmt.Fprintln(out, "Performance sweep: MAC x packet size")
	fmt.Fprintf(out, "%-8s %6s %12s %12s %12s\n", "mac", "bytes", "avg_dly_s", "steady_s", "avg_mbps")
	var points []point
	for _, mac := range []vanetsim.MACType{vanetsim.MACTDMA, vanetsim.MAC80211} {
		for _, size := range []int{250, 500, 1000, 1500} {
			cfg := vanetsim.Trial1()
			cfg.MAC = mac
			cfg.PacketSize = size
			cfg.Duration = vanetsim.Seconds(duration)
			points = append(points, point{sweep: "perf", cfg: cfg})
		}
	}
	return sweepAll(points, opts, func(i int, r *vanetsim.TrialResult) error {
		cfg := points[i].cfg
		d := r.Platoon1.MiddleDelays()
		_, steady := d.SteadyState()
		tput := r.Platoon1.Throughput().Summary(cfg.Duration)
		fmt.Fprintf(out, "%-8v %6d %12.4f %12.4f %12.4f\n",
			cfg.MAC, cfg.PacketSize, d.Summary().Mean, steady, tput.Mean)
		return nil
	})
}
