package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSafetyMatrixOnly(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-safety", "-duration", "40"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Safety matrix") {
		t.Fatal("safety matrix missing")
	}
	if strings.Contains(out, "Performance sweep") {
		t.Fatal("-safety should suppress the performance sweep")
	}
	// Both verdict letters must appear: the matrix spans the crossover.
	if !strings.Contains(out, "S") || !strings.Contains(out, "X") {
		t.Fatalf("matrix shows no contrast:\n%s", out)
	}
}

func TestPerfSweepOnly(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-perf", "-duration", "40"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "Safety matrix") {
		t.Fatal("-perf should suppress the safety matrix")
	}
	// 2 MACs x 4 sizes = 8 data rows.
	if got := strings.Count(out, "\n") - 2; got != 8 {
		t.Fatalf("perf sweep rows = %d, want 8", got)
	}
}

// stripWallGauges removes the two host-clock NDJSON lines
// (run/wall_seconds, run/wall_per_sim_s) — the only metrics that vary
// between invocations even sequentially (see the determinism note in
// README).
func stripWallGauges(ndjson []byte) []byte {
	var out [][]byte
	for _, line := range bytes.Split(ndjson, []byte{'\n'}) {
		if bytes.Contains(line, []byte(`"run/wall_`)) {
			continue
		}
		out = append(out, line)
	}
	return bytes.Join(out, []byte{'\n'})
}

// TestParallelDeterminism is the tentpole's golden test: the full sweep
// at -j 8 must produce byte-identical stdout, progress, and NDJSON to
// -j 1 (NDJSON modulo the two wall-clock gauges, which differ between
// ANY two invocations). CI runs this under -race with -count=2.
func TestParallelDeterminism(t *testing.T) {
	dir := t.TempDir()
	invoke := func(j string) (stdout, progress, ndjson []byte) {
		t.Helper()
		path := filepath.Join(dir, "runs-j"+j+".ndjson")
		var out, prog bytes.Buffer
		if err := runWith([]string{"-duration", "30", "-j", j, "-stats-json", path}, &out, &prog); err != nil {
			t.Fatalf("-j %s: %v", j, err)
		}
		nd, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return out.Bytes(), prog.Bytes(), nd
	}
	seqOut, seqProg, seqND := invoke("1")
	parOut, parProg, parND := invoke("8")

	if !bytes.Equal(seqOut, parOut) {
		t.Errorf("stdout differs between -j 1 and -j 8:\n--- j=1\n%s\n--- j=8\n%s", seqOut, parOut)
	}
	if !bytes.Equal(seqProg, parProg) {
		t.Errorf("progress stream differs between -j 1 and -j 8:\n--- j=1\n%s\n--- j=8\n%s", seqProg, parProg)
	}
	if a, b := stripWallGauges(seqND), stripWallGauges(parND); !bytes.Equal(a, b) {
		t.Errorf("NDJSON differs between -j 1 and -j 8 (%d vs %d bytes)", len(a), len(b))
	}
	if len(seqND) == 0 || !bytes.Contains(seqND, []byte(`"kind":"run"`)) {
		t.Error("NDJSON stream missing run headers")
	}
}

// TestStatsJSONAppends: the -stats-json help text promises append
// semantics, so a second invocation must accumulate onto the first, not
// clobber it.
func TestStatsJSONAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.ndjson")
	countRuns := func() int {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return bytes.Count(b, []byte(`"kind":"run"`))
	}
	args := []string{"-safety", "-duration", "30", "-stats-json", path}
	if err := runWith(args, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	first := countRuns()
	if first == 0 {
		t.Fatal("first invocation wrote no run records")
	}
	if err := runWith(args, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	if got := countRuns(); got != 2*first {
		t.Fatalf("after two invocations: %d run records, want %d (append, not truncate)", got, 2*first)
	}
}

// TestSafetyMatrixRefusesMissingIndication: when no packet ever reaches
// the trailing vehicle there is no indication delay; the sweep must
// fail loudly instead of printing an all-safe matrix built on 0.0 s.
func TestSafetyMatrixRefusesMissingIndication(t *testing.T) {
	var out bytes.Buffer
	err := runWith([]string{"-safety", "-duration", "0"}, &out, io.Discard)
	if err == nil {
		t.Fatalf("zero-duration safety matrix did not fail; output:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "no packet") {
		t.Fatalf("error does not explain the missing sample: %v", err)
	}
	if strings.Contains(out.String(), "S = safe") {
		t.Fatal("matrix was printed despite the missing indication delay")
	}
}

func TestDegradeSweep(t *testing.T) {
	var sb strings.Builder
	args := []string{"-degrade", "-duration", "30",
		"-degrade-loss", "0,0.2", "-degrade-burst", "1,4",
		"-degrade-outage", "1:22:5"}
	if err := runWith(args, &sb, io.Discard); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Degradation sweep") || !strings.Contains(out, "node 1 down [22 s, 27 s)") {
		t.Fatalf("degradation header wrong:\n%s", out)
	}
	if strings.Contains(out, "Safety matrix") || strings.Contains(out, "Performance sweep") {
		t.Fatal("-degrade must print only the degradation sweep")
	}
	// 2 loss rates x 2 burst lengths = 4 data rows after header + column line.
	if got := strings.Count(out, "\n") - 2; got != 4 {
		t.Fatalf("got %d data rows, want 4:\n%s", got, out)
	}
}

func TestDegradeSweepIdenticalAcrossJobs(t *testing.T) {
	mk := func(jobs string) string {
		var sb strings.Builder
		args := []string{"-degrade", "-duration", "30", "-j", jobs,
			"-degrade-loss", "0,0.1,0.2", "-degrade-burst", "1"}
		if err := runWith(args, &sb, io.Discard); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if a, b := mk("1"), mk("8"); a != b {
		t.Fatalf("-degrade output differs between -j1 and -j8:\n%s\nvs\n%s", a, b)
	}
}

func TestDegradeAxisErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-degrade", "-degrade-loss", "nope"},
		{"-degrade", "-degrade-burst", ""},
		{"-degrade", "-degrade-outage", "1:2"},
		{"-degrade", "-degrade-mac", "csma"},
	} {
		if err := runWith(args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
