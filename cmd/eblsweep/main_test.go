package main

import (
	"strings"
	"testing"
)

func TestSafetyMatrixOnly(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-safety", "-duration", "40"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Safety matrix") {
		t.Fatal("safety matrix missing")
	}
	if strings.Contains(out, "Performance sweep") {
		t.Fatal("-safety should suppress the performance sweep")
	}
	// Both verdict letters must appear: the matrix spans the crossover.
	if !strings.Contains(out, "S") || !strings.Contains(out, "X") {
		t.Fatalf("matrix shows no contrast:\n%s", out)
	}
}

func TestPerfSweepOnly(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-perf", "-duration", "40"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "Safety matrix") {
		t.Fatal("-perf should suppress the safety matrix")
	}
	// 2 MACs x 4 sizes = 8 data rows.
	if got := strings.Count(out, "\n") - 2; got != 8 {
		t.Fatalf("perf sweep rows = %d, want 8", got)
	}
}
