package vanetsim_test

import (
	"math"
	"strings"
	"testing"

	"vanetsim"
)

func TestReplicationStudy80211(t *testing.T) {
	cfg := vanetsim.Trial3()
	cfg.Duration = vanetsim.Seconds(60)
	st := vanetsim.RunReplications(cfg, []uint64{1, 2, 3, 4})
	if len(st.Runs) != 4 {
		t.Fatalf("runs = %d", len(st.Runs))
	}
	// 802.11 backoff is random, so replications must differ...
	same := true
	for _, r := range st.Runs[1:] {
		if r.AvgDelayS != st.Runs[0].AvgDelayS {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical delay means")
	}
	// ...but only slightly: the CI should be tight around a stable value.
	if st.DelayCI.HalfWidth <= 0 || math.IsInf(st.DelayCI.HalfWidth, 1) {
		t.Fatalf("degenerate delay CI: %+v", st.DelayCI)
	}
	if st.DelayCI.RelPrecision() > 0.5 {
		t.Fatalf("delay CI implausibly wide: %+v", st.DelayCI)
	}
	if st.TputCI.Mean <= 0 {
		t.Fatal("throughput CI mean must be positive")
	}
	out := st.String()
	for _, want := range []string{"4 replications", "avg delay", "avg throughput"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReplicationStudyTDMADeterministicLayersAgree(t *testing.T) {
	// TDMA has no random backoff, so per-seed results are identical and
	// the cross-seed CI collapses to zero width — which is itself a
	// statement about the protocol.
	cfg := vanetsim.Trial1()
	cfg.Duration = vanetsim.Seconds(50)
	st := vanetsim.RunReplications(cfg, []uint64{1, 2, 3})
	if st.SteadyCI.HalfWidth > 1e-9 {
		t.Fatalf("TDMA replications should agree exactly; CI half-width = %v", st.SteadyCI.HalfWidth)
	}
}

func TestReplicationStudyPanicsOnOneSeed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("single seed did not panic")
		}
	}()
	vanetsim.RunReplications(vanetsim.Trial1(), []uint64{1})
}
