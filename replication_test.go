package vanetsim_test

import (
	"math"
	"strings"
	"testing"

	"vanetsim"
)

func TestReplicationStudy80211(t *testing.T) {
	cfg := vanetsim.Trial3()
	cfg.Duration = vanetsim.Seconds(60)
	st, err := vanetsim.RunReplications(cfg, []uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Runs) != 4 {
		t.Fatalf("runs = %d", len(st.Runs))
	}
	// 802.11 backoff is random, so replications must differ...
	same := true
	for _, r := range st.Runs[1:] {
		if r.AvgDelayS != st.Runs[0].AvgDelayS {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical delay means")
	}
	// ...but only slightly: the CI should be tight around a stable value.
	if st.DelayCI.HalfWidth <= 0 || math.IsInf(st.DelayCI.HalfWidth, 1) {
		t.Fatalf("degenerate delay CI: %+v", st.DelayCI)
	}
	if st.DelayCI.RelPrecision() > 0.5 {
		t.Fatalf("delay CI implausibly wide: %+v", st.DelayCI)
	}
	if st.TputCI.Mean <= 0 {
		t.Fatal("throughput CI mean must be positive")
	}
	out := st.String()
	for _, want := range []string{"4 replications", "avg delay", "avg throughput"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReplicationStudyTDMADeterministicLayersAgree(t *testing.T) {
	// TDMA has no random backoff, so per-seed results are identical and
	// the cross-seed CI collapses to zero width — which is itself a
	// statement about the protocol.
	cfg := vanetsim.Trial1()
	cfg.Duration = vanetsim.Seconds(50)
	st, err := vanetsim.RunReplications(cfg, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.SteadyCI.HalfWidth > 1e-9 {
		t.Fatalf("TDMA replications should agree exactly; CI half-width = %v", st.SteadyCI.HalfWidth)
	}
}

// TestReplicationStudyErrorsOnOneSeed: fewer than two seeds is an error
// (it used to panic), so cmd tools fail with a message, not a stack
// trace.
func TestReplicationStudyErrorsOnOneSeed(t *testing.T) {
	for _, seeds := range [][]uint64{nil, {1}} {
		if _, err := vanetsim.RunReplications(vanetsim.Trial1(), seeds); err == nil {
			t.Fatalf("seeds=%v: expected an error", seeds)
		}
	}
}

// TestReplicationStudyMissingFirstIsNaN: a duration too short for any
// packet to reach the trailing vehicle must surface as NaN — an
// explicit missing-sample marker — never as a silent 0.0 s indication
// delay (which would claim every speed/gap combination safe).
func TestReplicationStudyMissingFirstIsNaN(t *testing.T) {
	cfg := vanetsim.Trial1()
	cfg.Duration = 0 // no packet is ever received
	st, err := vanetsim.RunReplications(cfg, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range st.Runs {
		if !math.IsNaN(r.FirstS) {
			t.Fatalf("seed %d: FirstS = %v, want NaN", r.Seed, r.FirstS)
		}
	}
	if !math.IsNaN(st.FirstCI.Mean) {
		t.Fatalf("FirstCI.Mean = %v, want NaN", st.FirstCI.Mean)
	}
	// The all-missing case is also counted explicitly, and the report
	// says so instead of printing a bare NaN row.
	if st.FirstMissing != 2 {
		t.Fatalf("FirstMissing = %d, want 2", st.FirstMissing)
	}
	if out := st.String(); !strings.Contains(out, "missing in 2/2 replications") {
		t.Fatalf("report does not state the missing count:\n%s", out)
	}
}

// TestReplicationStudyRejectsDuplicateSeeds: a duplicate seed re-runs
// the identical simulation and double-counts it, which deflates the
// sample variance and artificially narrows every CI — it must be
// rejected, not silently accepted.
func TestReplicationStudyRejectsDuplicateSeeds(t *testing.T) {
	cfg := vanetsim.Trial1()
	cfg.Duration = vanetsim.Seconds(10)
	_, err := vanetsim.RunReplications(cfg, []uint64{1, 2, 1})
	if err == nil {
		t.Fatal("duplicate seeds accepted")
	}
	if !strings.Contains(err.Error(), "duplicate replication seed 1") {
		t.Fatalf("unhelpful duplicate-seed error: %v", err)
	}
}

// TestReplicationsPoolInvariant: every pool size yields the identical
// study — the runner's determinism contract at the library surface.
func TestReplicationsPoolInvariant(t *testing.T) {
	cfg := vanetsim.Trial3()
	cfg.Duration = vanetsim.Seconds(40)
	seeds := []uint64{1, 2, 3}
	seq, err := vanetsim.RunReplicationsPool(cfg, seeds, vanetsim.Pool{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := vanetsim.RunReplicationsPool(cfg, seeds, vanetsim.Pool{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Fatalf("parallel study differs from sequential:\n--- j=1\n%s--- j=8\n%s", seq, par)
	}
}
