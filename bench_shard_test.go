// Shard-scaling benchmark: the dense-highway scenario end to end at
// different shard counts of the staged offer pipeline. Output is
// byte-identical at every shard count (TestDenseHighwayShardInvariance),
// so this pair measures pure execution cost: on a single-CPU host the
// pipeline computes its shards inline and shards=4 must stay within
// tolerance of shards=1; on a multi-core host the compute stage fans out
// across worker goroutines. Compare with
//
//	GOMAXPROCS=1 go test -bench='BenchmarkDenseShards' -benchtime=2x -benchmem .
//
// The wall-clock speedup recorded in BENCH_SHARD.json comes from the
// engine work that rode along with the sharding PR (three-tier scheduler
// heap with batch horizon migration, epoch draining, staged offers), not
// from parallel hardware: the reference host has one CPU.
package vanetsim_test

import (
	"fmt"
	"testing"

	"vanetsim"
)

func benchDenseShards(b *testing.B, shards int) {
	cfg := vanetsim.DefaultDenseHighway(vanetsim.MAC80211, 240)
	cfg.Duration = vanetsim.Seconds(5)
	cfg.Shards = shards
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := vanetsim.RunDenseHighway(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.Channel.Delivered == 0 {
			b.Fatal("dense run delivered nothing")
		}
	}
}

func BenchmarkDenseShards(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) { benchDenseShards(b, shards) })
	}
}
