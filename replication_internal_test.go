package vanetsim

import (
	"math"
	"strings"
	"testing"
)

// One NaN among real samples is the regression the "initial pkt" row
// used to get wrong: stats.MeanCI propagates the NaN and the whole row
// prints "NaN ± NaN", hiding the two real measurements. The CI must
// instead cover the observed samples, with the miss counted explicitly.
func TestAggregateFirstCIOverObservedSamples(t *testing.T) {
	st := &ReplicationStudy{Runs: []Replication{
		{Seed: 1, AvgDelayS: 0.5, SteadyS: 0.4, FirstS: 1.0, AvgTputMbps: 1.0},
		{Seed: 2, AvgDelayS: 0.6, SteadyS: 0.5, FirstS: math.NaN(), AvgTputMbps: 1.1},
		{Seed: 3, AvgDelayS: 0.7, SteadyS: 0.6, FirstS: 3.0, AvgTputMbps: 1.2},
	}}
	st.aggregate()
	if st.FirstMissing != 1 {
		t.Fatalf("FirstMissing = %d, want 1", st.FirstMissing)
	}
	if math.IsNaN(st.FirstCI.Mean) || st.FirstCI.Mean != 2.0 || st.FirstCI.N != 2 {
		t.Fatalf("FirstCI = %+v, want mean 2.0 over the 2 observed samples", st.FirstCI)
	}
	if math.IsNaN(st.FirstCI.HalfWidth) || math.IsInf(st.FirstCI.HalfWidth, 1) {
		t.Fatalf("FirstCI half-width = %v, want finite", st.FirstCI.HalfWidth)
	}
	// The other rows are unaffected by the missing first-packet sample.
	if st.DelayCI.N != 3 || st.TputCI.N != 3 {
		t.Fatalf("full-sample CIs shrank: delay N=%d tput N=%d", st.DelayCI.N, st.TputCI.N)
	}
	out := st.String()
	if strings.Contains(out, "NaN") {
		t.Fatalf("report prints NaN despite observed samples:\n%s", out)
	}
	if !strings.Contains(out, "missing in 1/3 replications") {
		t.Fatalf("report does not state the missing count:\n%s", out)
	}
}
