// Package vanetsim reproduces "Simulation and Analysis of Extended Brake
// Lights for Inter-Vehicle Communication Networks" (Watson, Pellerito,
// Gladden, Fu; ICDCS 2007) as a self-contained discrete-event simulator:
// an ns-2-class wireless stack (two-ray-ground PHY, TDMA and 802.11 DCF
// MACs, AODV routing, one-way TCP) under the paper's two-platoon
// intersection scenario, plus the analysis machinery that regenerates
// every figure and table of its evaluation.
//
// Quick start:
//
//	result := vanetsim.RunTrial(vanetsim.Trial1())
//	fmt.Println(vanetsim.DelayTable(result))
//
// The three paper trials are Trial1 (TDMA, 1,000-byte packets), Trial2
// (TDMA, 500 bytes) and Trial3 (802.11, 1,000 bytes). Figures are
// regenerated with the Fig* helpers and rendered with Figure.ASCII or
// exported as CSV.
package vanetsim

import (
	"fmt"
	"os"
	"strings"

	"vanetsim/internal/check"
	"vanetsim/internal/ebl"
	"vanetsim/internal/obs"
	"vanetsim/internal/runner"
	"vanetsim/internal/scenario"
	"vanetsim/internal/sim"
	"vanetsim/internal/span"
	"vanetsim/internal/trace"
)

// MACType selects the medium-access protocol for a trial.
type MACType = scenario.MACType

// MAC types.
const (
	MACTDMA  = scenario.MACTDMA
	MAC80211 = scenario.MAC80211
)

// QueueType selects the interface-queue flavour for a trial.
type QueueType = scenario.QueueType

// Queue types.
const (
	QueueDropTail = scenario.QueueDropTail
	QueuePri      = scenario.QueuePri
	QueueRED      = scenario.QueueRED
)

// TrialConfig configures a run of the paper's intersection scenario.
type TrialConfig = scenario.TrialConfig

// TrialResult carries a completed trial's measurements.
type TrialResult = scenario.TrialResult

// PlatoonResult is one platoon's view of a trial.
type PlatoonResult = scenario.PlatoonResult

// Trial1 returns the paper's base configuration: TDMA, 1,000-byte packets.
func Trial1() TrialConfig { return scenario.Trial1() }

// Trial2 returns the packet-size variation: TDMA, 500-byte packets.
func Trial2() TrialConfig { return scenario.Trial2() }

// Trial3 returns the MAC variation: 802.11, 1,000-byte packets.
func Trial3() TrialConfig { return scenario.Trial3() }

// RunTrial executes the scenario under cfg.
func RunTrial(cfg TrialConfig) *TrialResult { return scenario.RunTrial(cfg) }

// Pool bounds how many simulation runs execute concurrently in the
// parallel entry points (RunTrials, RunReplicationsPool). The zero
// value sizes itself to the machine (one worker per CPU).
type Pool = runner.Pool

// RunTrials executes independent trial configurations concurrently on a
// bounded worker pool (jobs <= 0 means one worker per CPU) and returns
// the results in input order. Each run is fully isolated — its own
// scheduler, RNG, and telemetry registry — so every result, table, and
// export is identical to running the configurations sequentially.
func RunTrials(cfgs []TrialConfig, jobs int) []*TrialResult {
	results, _ := runner.Map(runner.Pool{Workers: jobs}, len(cfgs),
		func(i int) (*TrialResult, error) { return scenario.RunTrial(cfgs[i]), nil })
	return results
}

// HighwayConfig configures the extension scenario: an N-vehicle highway
// platoon whose lead brakes hard and whose followers react only to the
// EBL radio indication.
type HighwayConfig = scenario.HighwayConfig

// HighwayResult carries a completed highway run's outcomes.
type HighwayResult = scenario.HighwayResult

// BrakeIndication is one follower's outcome in a highway run.
type BrakeIndication = scenario.BrakeIndication

// DefaultHighway returns a 50-mph emergency-braking configuration with n
// vehicles on the given MAC.
func DefaultHighway(mac MACType, n int) HighwayConfig { return scenario.DefaultHighway(mac, n) }

// RunHighway executes the highway emergency-braking scenario. It returns
// an error on an unrunnable configuration (fewer than two vehicles).
func RunHighway(cfg HighwayConfig) (*HighwayResult, error) { return scenario.RunHighway(cfg) }

// DenseHighwayConfig configures the multi-lane scaling scenario: hundreds
// to thousands of vehicles in per-lane platoons under a mixed beacon and
// safety-stream load, the workload the channel's spatial-index neighbor
// culling exists for.
type DenseHighwayConfig = scenario.DenseHighwayConfig

// DenseHighwayResult carries a completed dense-highway run's outcomes.
type DenseHighwayResult = scenario.DenseHighwayResult

// DefaultDenseHighway returns an n-vehicle four-lane configuration on the
// given MAC.
func DefaultDenseHighway(mac MACType, n int) DenseHighwayConfig {
	return scenario.DefaultDenseHighway(mac, n)
}

// RunDenseHighway executes the dense multi-lane scaling scenario. It
// returns an error on an unrunnable configuration.
func RunDenseHighway(cfg DenseHighwayConfig) (*DenseHighwayResult, error) {
	return scenario.RunDenseHighway(cfg)
}

// JammingConfig configures the denial-of-service experiment: a stopped
// platoon exchanging EBL status datagrams while an attacker floods the
// radio channel (the 802.11-vs-TDMA/FHSS security trade-off the paper's
// §III.E raises).
type JammingConfig = scenario.JammingConfig

// JammingResult carries a completed attack run's outcomes.
type JammingResult = scenario.JammingResult

// JamFlowResult is one flow's outcome under attack.
type JamFlowResult = scenario.JamFlowResult

// DefaultJamming returns a 3-vehicle run with a continuous single-channel
// jammer starting at t = 10 s.
func DefaultJamming(mac MACType) JammingConfig { return scenario.DefaultJamming(mac) }

// RunJamming executes the denial-of-service experiment. It returns an
// error when the attack configuration is invalid.
func RunJamming(cfg JammingConfig) (*JammingResult, error) { return scenario.RunJamming(cfg) }

// CheckViolation is one runtime invariant violation recorded by a checked
// run (TrialConfig.Check and the Highway/Jamming equivalents). A clean
// checked run leaves the result's Violations slice empty.
type CheckViolation = check.Violation

// StoppingAnalysis is the §III.E stopping-distance feasibility result.
type StoppingAnalysis = ebl.StoppingAnalysis

// AnalyzeStopping runs the stopping-distance analysis with an explicit
// braking model and driver reaction time.
func AnalyzeStopping(initialDelay sim.Time, speedMS, separationM, decel float64, reaction sim.Time) StoppingAnalysis {
	return ebl.Analyze(initialDelay, speedMS, separationM, decel, reaction)
}

// PaperStoppingAnalysis runs the paper's published arithmetic: 22.4 m/s,
// 25 m separation, distance covered during the initial packet's flight.
func PaperStoppingAnalysis(initialDelay sim.Time) StoppingAnalysis {
	return ebl.PaperAnalysis(initialDelay)
}

// MPHToMS converts miles per hour to metres per second.
func MPHToMS(mph float64) float64 { return ebl.MPHToMS(mph) }

// BrakingModel parameterises the feasibility-envelope analysis (brake
// condition, driver reaction, safety margin — the factors the paper's
// §III.E lists as deciding whether the warning suffices).
type BrakingModel = ebl.BrakingModel

// EnvelopeRow is one speed's minimum-safe-gap verdict for both MACs.
type EnvelopeRow = ebl.EnvelopeRow

// DefaultBrakingModel returns dry-road braking with a 0.7 s reaction.
func DefaultBrakingModel() BrakingModel { return ebl.DefaultBrakingModel() }

// FeasibilityEnvelope sweeps speeds and reports the minimum safe following
// gap per MAC given each MAC's measured initial-packet indication delay.
func FeasibilityEnvelope(model BrakingModel, delayTDMA, delay80211 sim.Time, speedsMS []float64) []EnvelopeRow {
	return ebl.FeasibilityEnvelope(model, delayTDMA, delay80211, speedsMS)
}

// FormatEnvelopeTable renders envelope rows as an aligned text table.
func FormatEnvelopeTable(rows []EnvelopeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %8s | %12s %10s | %12s %10s\n",
		"v (m/s)", "v (mph)", "TDMA gap(m)", "25m safe?", "802.11 gap(m)", "25m safe?")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8.1f %8.1f | %12.1f %10v | %12.1f %10v\n",
			r.SpeedMS, r.SpeedMS/0.44704, r.MinGapTDMA, r.SafeAt25TDMA, r.MinGap80211, r.SafeAt2580211)
	}
	return b.String()
}

// Seconds converts a float64 second count into simulated time (for
// TrialConfig.Duration overrides).
func Seconds(s float64) sim.Time { return sim.Time(s) }

// WriteTrace writes a trial's collected trace records (run with
// CollectTrace set) to path in the ns-2-like line format that
// cmd/ebltrace parses.
func WriteTrace(path string, r *TrialResult) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("vanetsim: %w", err)
	}
	if err := trace.WriteAll(f, r.Trace); err != nil {
		f.Close()
		return fmt.Errorf("vanetsim: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("vanetsim: close trace: %w", err)
	}
	return nil
}

// SpanEvent is one causal-tracing lifecycle step of one packet (emit,
// queue enq/deq, MAC wait, transmit with airtime, loss with cause,
// forward, delivery). Arm collection with TrialConfig.Spans (and the
// Highway/Jamming equivalents); the run's events land on the result's
// Spans field in scheduler order.
type SpanEvent = span.Event

// LatencyBreakdown decomposes one delivered packet's end-to-end delay into
// queueing, contention, airtime, retransmit, rerouting, and residual
// components.
type LatencyBreakdown = span.Breakdown

// LatencyAggregate is the mean latency decomposition over delivered
// packets.
type LatencyAggregate = span.Aggregate

// AnalyzeSpans folds a run's span events into one latency breakdown per
// delivered packet.
func AnalyzeSpans(events []SpanEvent) []LatencyBreakdown { return span.Analyze(events) }

// SummarizeBreakdowns averages per-packet breakdowns into one aggregate.
func SummarizeBreakdowns(bs []LatencyBreakdown) LatencyAggregate { return span.Summarize(bs) }

// FormatLatencyComparison renders aggregates side by side (one labelled
// column each) as an aligned per-component milliseconds table.
func FormatLatencyComparison(labels []string, aggs []LatencyAggregate) string {
	return span.FormatComparison(labels, aggs)
}

// WriteSpans writes a run's span events (run with Spans set) to path as
// NDJSON, one event object per line in scheduler order. The bytes are
// identical for a given configuration at any RunTrials parallelism.
func WriteSpans(path string, events []SpanEvent) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("vanetsim: %w", err)
	}
	if err := span.WriteNDJSON(f, events); err != nil {
		f.Close()
		return fmt.Errorf("vanetsim: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("vanetsim: close spans: %w", err)
	}
	return nil
}

// WriteSpansChrome writes a run's span events to path in the Chrome
// trace-event JSON format (load via chrome://tracing or Perfetto; one
// thread track per node).
func WriteSpansChrome(path string, events []SpanEvent) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("vanetsim: %w", err)
	}
	if err := span.WriteChrome(f, events); err != nil {
		f.Close()
		return fmt.Errorf("vanetsim: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("vanetsim: close spans: %w", err)
	}
	return nil
}

// Telemetry is a cross-layer metrics snapshot: counters, gauges with
// high-water marks, latency histograms, and time series harvested from
// every stack layer plus the scheduler. Enable collection with
// TrialConfig.Telemetry (and the Highway/Jamming equivalents); render with
// FormatText, NDJSON, or Prometheus.
type Telemetry = obs.Snapshot

// NewTelemetryRegistry returns a live registry for callers assembling
// worlds directly through the scenario package.
func NewTelemetryRegistry() *obs.Registry { return obs.NewRegistry() }
