// Benchmark harness: one benchmark per figure and table of the paper's
// evaluation section. Each benchmark regenerates its artifact from scratch
// (full trial run + analysis) and reports the headline values the paper
// prints in its text as benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation and prints where every number landed.
// See EXPERIMENTS.md for the paper-vs-measured comparison.
package vanetsim_test

import (
	"testing"

	"vanetsim"
)

// benchDelayFigure regenerates a delay figure and reports its series
// length, steady-state level, and first-packet delay.
func benchDelayFigure(b *testing.B, cfg vanetsim.TrialConfig, fig func(*vanetsim.TrialResult) vanetsim.Figure, platoon1 bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := vanetsim.RunTrial(cfg)
		f := fig(r)
		if f.Len() == 0 {
			b.Fatal("empty figure")
		}
		p := r.Platoon1
		if !platoon1 {
			p = r.Platoon2
		}
		_, steady := p.MiddleDelays().SteadyState()
		first, _ := p.MiddleDelays().First()
		b.ReportMetric(float64(f.Len()), "points")
		b.ReportMetric(steady, "steady_s")
		b.ReportMetric(float64(first), "first_s")
	}
}

// benchThroughputFigure regenerates a throughput figure and reports the
// paper's avg/max statistics.
func benchThroughputFigure(b *testing.B, cfg vanetsim.TrialConfig, fig func(*vanetsim.TrialResult) vanetsim.Figure) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := vanetsim.RunTrial(cfg)
		f := fig(r)
		if f.Len() == 0 {
			b.Fatal("empty figure")
		}
		sm := r.Platoon1.Throughput().Summary(r.Config.Duration)
		b.ReportMetric(sm.Mean, "avg_Mbps")
		b.ReportMetric(sm.Max, "max_Mbps")
	}
}

// Fig. 5: Trial 1 overall one-way delay vs packet ID (platoon 1).
func BenchmarkFig5_Trial1DelayOverall(b *testing.B) {
	benchDelayFigure(b, vanetsim.Trial1(), vanetsim.Fig5, true)
}

// Fig. 6: Trial 1 transient-state one-way delay (platoon 1).
func BenchmarkFig6_Trial1DelayTransient(b *testing.B) {
	benchDelayFigure(b, vanetsim.Trial1(), vanetsim.Fig6, true)
}

// Fig. 7: Trial 1 throughput vs time (platoon 1).
func BenchmarkFig7_Trial1Throughput(b *testing.B) {
	benchThroughputFigure(b, vanetsim.Trial1(), vanetsim.Fig7)
}

// Fig. 8: Trial 2 overall one-way delay (platoon 1).
func BenchmarkFig8_Trial2DelayOverall(b *testing.B) {
	benchDelayFigure(b, vanetsim.Trial2(), vanetsim.Fig8, true)
}

// Fig. 9: Trial 2 transient-state one-way delay (platoon 1).
func BenchmarkFig9_Trial2DelayTransient(b *testing.B) {
	benchDelayFigure(b, vanetsim.Trial2(), vanetsim.Fig9, true)
}

// Fig. 10: Trial 2 throughput vs time (platoon 1).
func BenchmarkFig10_Trial2Throughput(b *testing.B) {
	benchThroughputFigure(b, vanetsim.Trial2(), vanetsim.Fig10)
}

// Fig. 11: Trial 3 overall one-way delay (platoon 1).
func BenchmarkFig11_Trial3DelayP1Overall(b *testing.B) {
	benchDelayFigure(b, vanetsim.Trial3(), vanetsim.Fig11, true)
}

// Fig. 12: Trial 3 transient-state one-way delay (platoon 1).
func BenchmarkFig12_Trial3DelayP1Transient(b *testing.B) {
	benchDelayFigure(b, vanetsim.Trial3(), vanetsim.Fig12, true)
}

// Fig. 13: Trial 3 overall one-way delay (platoon 2).
func BenchmarkFig13_Trial3DelayP2Overall(b *testing.B) {
	benchDelayFigure(b, vanetsim.Trial3(), vanetsim.Fig13, false)
}

// Fig. 14: Trial 3 transient-state one-way delay (platoon 2).
func BenchmarkFig14_Trial3DelayP2Transient(b *testing.B) {
	benchDelayFigure(b, vanetsim.Trial3(), vanetsim.Fig14, false)
}

// Fig. 15: Trial 3 throughput vs time (platoon 1).
func BenchmarkFig15_Trial3Throughput(b *testing.B) {
	benchThroughputFigure(b, vanetsim.Trial3(), vanetsim.Fig15)
}

// benchDelayTable regenerates the in-text per-vehicle delay statistics.
func benchDelayTable(b *testing.B, cfg vanetsim.TrialConfig) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := vanetsim.RunTrial(cfg)
		rows := vanetsim.DelayTable(r)
		if len(rows) != 4 {
			b.Fatalf("delay table rows = %d", len(rows))
		}
		// Platoon 1 middle vehicle, the row the paper leads with.
		b.ReportMetric(rows[0].AvgS, "avg_s")
		b.ReportMetric(rows[0].MinS, "min_s")
		b.ReportMetric(rows[0].MaxS, "max_s")
	}
}

// benchThroughputCITable regenerates the in-text throughput statistics and
// 95% confidence analysis.
func benchThroughputCITable(b *testing.B, cfg vanetsim.TrialConfig) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := vanetsim.RunTrial(cfg)
		rows := vanetsim.ThroughputTable(r)
		if len(rows) != 2 {
			b.Fatalf("throughput table rows = %d", len(rows))
		}
		b.ReportMetric(rows[0].AvgMbps, "avg_Mbps")
		b.ReportMetric(rows[0].CIHalfMbps, "ci95_Mbps")
		b.ReportMetric(rows[0].RelPrecision*100, "relprec_pct")
	}
}

// In-text table: Trial 1 per-vehicle delay statistics.
func BenchmarkTableTrial1Delay(b *testing.B) { benchDelayTable(b, vanetsim.Trial1()) }

// In-text table: Trial 1 throughput statistics + confidence analysis.
func BenchmarkTableTrial1ThroughputCI(b *testing.B) { benchThroughputCITable(b, vanetsim.Trial1()) }

// In-text table: Trial 2 per-vehicle delay statistics.
func BenchmarkTableTrial2Delay(b *testing.B) { benchDelayTable(b, vanetsim.Trial2()) }

// In-text table: Trial 2 throughput statistics + confidence analysis.
func BenchmarkTableTrial2ThroughputCI(b *testing.B) { benchThroughputCITable(b, vanetsim.Trial2()) }

// In-text table: Trial 3 per-vehicle delay statistics.
func BenchmarkTableTrial3Delay(b *testing.B) { benchDelayTable(b, vanetsim.Trial3()) }

// In-text table: Trial 3 throughput statistics + confidence analysis.
func BenchmarkTableTrial3ThroughputCI(b *testing.B) { benchThroughputCITable(b, vanetsim.Trial3()) }

// §III.E analysis A1: packet-size impact (trial 1 vs trial 2) — delay
// unchanged, throughput halved.
func BenchmarkAnalysisPacketSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r1 := vanetsim.RunTrial(vanetsim.Trial1())
		r2 := vanetsim.RunTrial(vanetsim.Trial2())
		d1 := r1.Platoon1.MiddleDelays().Summary().Mean
		d2 := r2.Platoon1.MiddleDelays().Summary().Mean
		t1 := r1.Platoon1.Throughput().Summary(r1.Config.Duration).Mean
		t2 := r2.Platoon1.Throughput().Summary(r2.Config.Duration).Mean
		b.ReportMetric(d2/d1, "delay_ratio") // paper: ~1.0
		b.ReportMetric(t2/t1, "tput_ratio")  // paper: ~0.5
	}
}

// §III.E analysis A2: MAC impact (trial 1 vs trial 3) — 802.11 much
// faster on both metrics.
func BenchmarkAnalysisMACType(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r1 := vanetsim.RunTrial(vanetsim.Trial1())
		r3 := vanetsim.RunTrial(vanetsim.Trial3())
		d1 := r1.Platoon1.MiddleDelays().Summary().Mean
		d3 := r3.Platoon1.MiddleDelays().Summary().Mean
		t1 := r1.Platoon1.Throughput().Summary(r1.Config.Duration).Mean
		t3 := r3.Platoon1.Throughput().Summary(r3.Config.Duration).Mean
		b.ReportMetric(d1/d3, "delay_speedup") // paper: large (TDMA ≫ 802.11)
		b.ReportMetric(t3/t1, "tput_gain")     // paper: significantly > 1
	}
}

// §III.E analysis A3: stopping-distance table — distance travelled before
// brake indication, as a fraction of the 25 m separation.
func BenchmarkAnalysisStoppingDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r1 := vanetsim.RunTrial(vanetsim.Trial1())
		r3 := vanetsim.RunTrial(vanetsim.Trial3())
		rows := vanetsim.StoppingTable(r1, r3)
		if len(rows) != 2 {
			b.Fatal("missing stopping rows")
		}
		b.ReportMetric(rows[0].FractionOfSeparation*100, "tdma_pct") // paper: >20%
		b.ReportMetric(rows[1].FractionOfSeparation*100, "dcf_pct")  // paper: <2%
		b.ReportMetric(rows[0].DistanceBeforeNotice, "tdma_m")       // paper: ~5.38 m
	}
}
