package vanetsim_test

import (
	"fmt"

	"vanetsim"
)

// The paper's §III.E arithmetic: at 50 mph, a 0.24 s brake indication
// costs 5.38 m — over 20% of the 25 m following gap.
func ExamplePaperStoppingAnalysis() {
	a := vanetsim.PaperStoppingAnalysis(0.24)
	fmt.Printf("travelled %.2f m = %.1f%% of the separation\n",
		a.DistanceBeforeNotice, a.FractionOfSeparation*100)
	// Output:
	// travelled 5.38 m = 21.5% of the separation
}

// Unit conversion used throughout the paper.
func ExampleMPHToMS() {
	fmt.Printf("%.1f m/s\n", vanetsim.MPHToMS(50))
	// Output:
	// 22.4 m/s
}

// A braking model turns an indication delay into a minimum safe gap.
func ExampleBrakingModel() {
	m := vanetsim.BrakingModel{LeadDecel: 7, FollowerDecel: 7, Reaction: 0.7, Margin: 5}
	fmt.Printf("TDMA:   %.1f m\n", m.MinSafeGap(22.4, 0.24))
	fmt.Printf("802.11: %.1f m\n", m.MinSafeGap(22.4, 0.006))
	// Output:
	// TDMA:   26.1 m
	// 802.11: 20.8 m
}

// Running a full trial and reading the headline result. (Shortened to
// 60 simulated seconds; the paper runs 200 s.)
func ExampleRunTrial() {
	cfg := vanetsim.Trial1()
	cfg.Duration = vanetsim.Seconds(60)
	r := vanetsim.RunTrial(cfg)
	_, steady := r.Platoon1.MiddleDelays().SteadyState()
	fmt.Printf("TDMA steady-state one-way delay: %.1f s\n", steady)
	// Output:
	// TDMA steady-state one-way delay: 2.9 s
}

// The highway extension: whether each follower stops in time depends on
// the MAC's indication latency.
func ExampleRunHighway() {
	r, err := vanetsim.RunHighway(vanetsim.DefaultHighway(vanetsim.MAC80211, 4))
	if err != nil {
		panic(err)
	}
	fmt.Printf("collisions: %d\n", r.Collisions)
	// Output:
	// collisions: 0
}
