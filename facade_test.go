package vanetsim_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vanetsim"
)

func TestWriteTraceRoundTrip(t *testing.T) {
	cfg := vanetsim.Trial1()
	cfg.Duration = vanetsim.Seconds(40)
	cfg.CollectTrace = true
	r := vanetsim.RunTrial(cfg)
	path := filepath.Join(t.TempDir(), "t.tr")
	if err := vanetsim.WriteTrace(path, r); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(string(data)), "\n") + 1
	if lines != len(r.Trace) {
		t.Fatalf("wrote %d lines for %d records", lines, len(r.Trace))
	}
}

func TestWriteTraceBadPath(t *testing.T) {
	r := &vanetsim.TrialResult{}
	if err := vanetsim.WriteTrace("/nonexistent-dir/x/y.tr", r); err == nil {
		t.Fatal("bad path should error")
	}
}

func TestFormatEnvelopeTable(t *testing.T) {
	rows := vanetsim.FeasibilityEnvelope(vanetsim.DefaultBrakingModel(), 0.24, 0.006, []float64{10, 22.4})
	out := vanetsim.FormatEnvelopeTable(rows)
	if !strings.Contains(out, "TDMA gap(m)") || !strings.Contains(out, "50.1") {
		t.Fatalf("envelope table malformed:\n%s", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("want header + 2 rows:\n%s", out)
	}
}

func TestREDTrialRuns(t *testing.T) {
	cfg := vanetsim.Trial1()
	cfg.Duration = vanetsim.Seconds(60)
	cfg.Queue = vanetsim.QueueRED
	r := vanetsim.RunTrial(cfg)
	_, redSteady := r.Platoon1.MiddleDelays().SteadyState()

	base := vanetsim.Trial1()
	base.Duration = vanetsim.Seconds(60)
	rb := vanetsim.RunTrial(base)
	_, dtSteady := rb.Platoon1.MiddleDelays().SteadyState()

	if redSteady >= dtSteady {
		t.Fatalf("RED steady delay (%v) should undercut drop-tail (%v)", redSteady, dtSteady)
	}
}

func TestSINRTrialMatchesCaptureInSparseScenario(t *testing.T) {
	a := vanetsim.Trial3()
	a.Duration = vanetsim.Seconds(60)
	ra := vanetsim.RunTrial(a)
	b := a
	b.SINRPhy = true
	rb := vanetsim.RunTrial(b)
	ta := ra.Platoon1.Throughput().Summary(a.Duration).Mean
	tb := rb.Platoon1.Throughput().Summary(b.Duration).Mean
	if ta != tb {
		t.Fatalf("sparse scenario: capture %v vs SINR %v should agree", ta, tb)
	}
}

func TestAnimRecorderInTrial(t *testing.T) {
	cfg := vanetsim.Trial1()
	cfg.Duration = vanetsim.Seconds(30)
	cfg.AnimInterval = 1
	r := vanetsim.RunTrial(cfg)
	if r.Anim == nil {
		t.Fatal("no recorder attached")
	}
	if r.Anim.Frames() != 31 {
		t.Fatalf("frames = %d, want 31", r.Anim.Frames())
	}
	if len(r.Anim.Nodes()) != 6 {
		t.Fatalf("tracked %d nodes, want 6", len(r.Anim.Nodes()))
	}
	frame := r.Anim.RenderFrame(0, r.Anim.AutoViewport(10), 40, 10)
	if !strings.Contains(frame, "t=") {
		t.Fatal("frame malformed")
	}
}

func TestFacadeJamming(t *testing.T) {
	cfg := vanetsim.DefaultJamming(vanetsim.MACTDMA)
	cfg.Duration = 20
	cfg.HopChannels = 4
	cfg.Jam.StartAt = 5
	r, err := vanetsim.RunJamming(cfg)
	if err != nil {
		t.Fatalf("RunJamming: %v", err)
	}
	if r.OverallDelivery <= 0.5 {
		t.Fatalf("FHSS delivery = %v under a 15 s attack window with hopping", r.OverallDelivery)
	}
	if len(r.Flows) != 2 {
		t.Fatalf("flows = %d", len(r.Flows))
	}
}
