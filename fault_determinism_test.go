// Determinism gate for the fault-injection layer: impairments draw from
// per-link RNG streams forked from the run seed, so a faulted run must be
// byte-identical between sequential and parallel execution — and its
// digests are pinned in the same golden file as the unfaulted hot-path
// cases, whose keys this test must never disturb.
//
// Regenerate (only when an intentional behaviour change lands) with:
//
//	go test -run 'DeterminismGolden|FaultDeterminism' -update-golden .
package vanetsim_test

import (
	"bytes"
	"testing"

	"vanetsim"
	"vanetsim/internal/trace"
)

// goldenFaultPlan exercises every impairment at once: composed Bernoulli
// and bursty loss, shadowing, and an outage that lands inside the 30 s
// golden window while platoon 1 communicates.
func goldenFaultPlan() vanetsim.FaultPlan {
	return vanetsim.FaultPlan{
		Bernoulli:     vanetsim.FaultBernoulli{LossProb: 0.05, BitErrorRate: 1e-6},
		Burst:         vanetsim.BurstFault(0.1, 4),
		ShadowSigmaDB: 4,
		Outages:       []vanetsim.FaultOutage{{Node: 1, Start: vanetsim.Seconds(22), Duration: vanetsim.Seconds(5)}},
	}
}

func faulted(cfg vanetsim.TrialConfig) vanetsim.TrialConfig {
	cfg.Faults = goldenFaultPlan()
	return cfg
}

// TestFaultDeterminism pins the faulted runs' digests in the golden file
// and proves a -j1 / -j8 worker pool reproduces them byte for byte.
func TestFaultDeterminism(t *testing.T) {
	checkGolden(t, map[string]goldenDigests{
		"trial1-tdma-faulted":  runGoldenCase(t, faulted(vanetsim.Trial1()), vanetsim.Fig5),
		"trial3-80211-faulted": runGoldenCase(t, faulted(vanetsim.Trial3()), vanetsim.Fig11),
	})

	// Parallel-pool byte-identity: the same two faulted configurations,
	// run twice per pool width, must produce identical traces and
	// telemetry NDJSON at -j1 and -j8.
	cfgs := make([]vanetsim.TrialConfig, 0, 4)
	for _, base := range []vanetsim.TrialConfig{vanetsim.Trial1(), vanetsim.Trial3()} {
		cfg := faulted(base)
		cfg.Duration = vanetsim.Seconds(30)
		cfg.CollectTrace = true
		cfg.Telemetry = true
		cfgs = append(cfgs, cfg, cfg)
	}
	digest := func(jobs int) []string {
		results := vanetsim.RunTrials(cfgs, jobs)
		out := make([]string, 0, len(results))
		for _, r := range results {
			var tr bytes.Buffer
			if err := trace.WriteAll(&tr, r.Trace); err != nil {
				t.Fatal(err)
			}
			out = append(out, sha(tr.Bytes())+"/"+sha(filteredNDJSON(t, r.Telemetry)))
		}
		return out
	}
	seq, par := digest(1), digest(8)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("faulted run %d differs between -j1 and -j8:\n%s\nvs\n%s", i, seq[i], par[i])
		}
	}
	// The duplicated configurations must also agree with each other —
	// per-link streams are forked from the run seed, never from shared
	// global state.
	if seq[0] != seq[1] || seq[2] != seq[3] {
		t.Fatal("identical faulted configurations diverged within one pool")
	}
}
