GO ?= go

# All build artifacts land in a per-checkout bin directory (gitignored),
# never in /tmp with fixed names: concurrent checkouts on one machine
# must not clobber each other's binaries or bench transcripts.
BIN := $(CURDIR)/bin

.PHONY: build test verify check bench bench-obs bench-parallel bench-hot bench-guard bench-dense bench-shard bench-service fuzz fuzz-nightly lint trace

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the CI gate: compile everything, vet, and run the full test
# suite under the race detector.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# check arms the runtime invariant checker everywhere: the full test
# suite with checks forced on (build tag `checkall`), then the four
# headline configurations and the fault-degradation grid through the CLI
# gates. Any recorded violation is a non-zero exit.
check:
	$(GO) test -tags=checkall ./...
	$(GO) build -o $(BIN)/vanetsim-check ./cmd/vanetsim
	$(BIN)/vanetsim-check -check -trial 1 > /dev/null
	$(BIN)/vanetsim-check -check -trial 2 > /dev/null
	$(BIN)/vanetsim-check -check -trial 3 > /dev/null
	$(BIN)/vanetsim-check -check -trial 0 -mac 802.11 -packet 500 > /dev/null
	$(GO) build -o $(BIN)/eblreport-check ./cmd/eblreport
	$(BIN)/eblreport-check -check -degrade > /dev/null

# bench regenerates the paper's evaluation as benchmark metrics.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# bench-obs measures the telemetry subsystem's overhead (instrumented vs
# baseline trial 1).
bench-obs:
	$(GO) test -bench='BenchmarkTrial1(Baseline|Instrumented)$$' -benchmem -run='^$$' .

# bench-parallel measures the run engine's fan-out speedup on the
# 16-point perf sweep (sequential vs one worker per CPU).
bench-parallel:
	$(GO) test -bench='BenchmarkParallelSweep16' -benchtime=2x -run='^$$' .

# bench-hot runs the discrete-event hot-path benchmarks tracked in
# BENCH_PR3.json: scheduler push/pop and cancel/reschedule, trace
# encode/decode, the end-to-end trial, and the trial with the span
# recorder disarmed (pinning the nil-check-only span overhead). Fixed
# -benchtime values keep runs comparable across machines and commits.
bench-hot:
	$(GO) test -bench='BenchmarkScheduler(HotPath|CancelReschedule)$$' -benchmem -benchtime=2s -run='^$$' ./internal/sim
	$(GO) test -bench='BenchmarkTrace(Encode|Decode)$$' -benchmem -benchtime=2s -run='^$$' ./internal/trace
	$(GO) test -bench='BenchmarkTrial1(Baseline|SpansDisarmed)$$' -benchmem -benchtime=5x -run='^$$' .

# bench-guard is the benchmark-regression gate: run the tracked hot-path
# benchmarks and judge them against BENCH_PR3.json with cmd/benchguard
# (any alloc/op regression, or >20% ns/op by default, fails).
bench-guard:
	$(GO) build -o $(BIN)/benchguard ./cmd/benchguard
	$(MAKE) --no-print-directory bench-hot | tee $(BIN)/bench-hot.txt
	$(BIN)/benchguard -baseline BENCH_PR3.json -input $(BIN)/bench-hot.txt

# bench-dense is the broadcast-scaling gate: per-transmission PHY cost
# over a dense highway line, spatial-index culling against the all-radios
# scan (plus the index under continuous mobility refresh), judged against
# BENCH_DENSE.json. The culled path must stay allocation-free, ~flat in
# the fleet size, and >=5x under the scan at n=1000.
bench-dense:
	$(GO) build -o $(BIN)/benchguard ./cmd/benchguard
	$(GO) test -bench='BenchmarkBroadcast(Scan|Culled|CulledMoving)' -benchmem -benchtime=1s -run='^$$' ./internal/phy | tee $(BIN)/bench-dense.txt
	$(BIN)/benchguard -baseline BENCH_DENSE.json -input $(BIN)/bench-dense.txt

# bench-shard is the staged-offer-pipeline gate: the sharded broadcast
# path and the dense scenario at -shards 4, judged against
# BENCH_SHARD.json. GOMAXPROCS=1 pins the pipeline's inline (no-worker)
# compute path, so timings measure the staging overhead itself and stay
# comparable across hosts; the sharded path must stay allocation-free
# per transmission and within tolerance of the serial loop. Output
# equality across shard counts is a test, not a benchmark — see
# TestDenseHighwayShardInvariance.
bench-shard:
	$(GO) build -o $(BIN)/benchguard ./cmd/benchguard
	GOMAXPROCS=1 $(GO) test -bench='BenchmarkBroadcastSharded' -benchmem -benchtime=1s -run='^$$' ./internal/phy | tee $(BIN)/bench-shard.txt
	GOMAXPROCS=1 $(GO) test -bench='BenchmarkDenseShards' -benchmem -benchtime=2x -run='^$$' . | tee -a $(BIN)/bench-shard.txt
	$(BIN)/benchguard -baseline BENCH_SHARD.json -input $(BIN)/bench-shard.txt

# bench-service is the vanetsimd service gate: the canonical-hash cache
# key (pinned allocation-free — every request pays it before the cache
# is consulted), the disk cache's hit path, and the full HTTP cache-hit
# round trip, judged against BENCH_SERVICE.json.
bench-service:
	$(GO) build -o $(BIN)/benchguard ./cmd/benchguard
	$(GO) test -bench='BenchmarkCanonicalHash$$' -benchmem -benchtime=2s -run='^$$' ./internal/service/canon | tee $(BIN)/bench-service.txt
	$(GO) test -bench='Benchmark(CacheGet|ServeCachedResult)$$' -benchmem -benchtime=1s -run='^$$' ./internal/service | tee -a $(BIN)/bench-service.txt
	$(BIN)/benchguard -baseline BENCH_SERVICE.json -input $(BIN)/bench-service.txt

# trace runs the quickstart example (trial 1) with causal span tracing
# armed and writes a Chrome trace-event file: open trial1-spans.json in
# chrome://tracing or https://ui.perfetto.dev to browse every packet's
# lifecycle per node. The NDJSON twin lands next to it for jq/scripting.
trace:
	$(GO) build -o $(BIN)/vanetsim-trace ./cmd/vanetsim
	$(BIN)/vanetsim-trace -trial 1 -spans trial1-spans.ndjson -spans-chrome trial1-spans.json > /dev/null
	@echo "wrote trial1-spans.json (chrome://tracing) and trial1-spans.ndjson"

# fuzz exercises the trace-line round trip for a short burst.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParseLine -fuzztime=30s ./internal/trace

# fuzz-nightly is the scheduled CI fuzz budget: the trace codec, the
# full-stack topology-conservation target, and the service's JSON config
# canonicaliser (hash stable under field reordering and default elision),
# a couple of minutes each.
FUZZTIME ?= 2m
fuzz-nightly:
	$(GO) test -run='^$$' -fuzz=FuzzParseLine -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -tags=checkall -run='^$$' -fuzz=FuzzTopologyConservation -fuzztime=$(FUZZTIME) ./internal/scenario
	$(GO) test -run='^$$' -fuzz=FuzzCanonicalRoundTrip -fuzztime=$(FUZZTIME) ./internal/service/canon

# lint runs the static analyzers CI uses; tools are expected on PATH
# (CI installs them, see .github/workflows/ci.yml).
lint:
	$(GO) vet ./...
	staticcheck ./...
	govulncheck ./...
