GO ?= go

.PHONY: build test verify bench bench-obs bench-parallel fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the CI gate: compile everything, vet, and run the full test
# suite under the race detector.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# bench regenerates the paper's evaluation as benchmark metrics.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# bench-obs measures the telemetry subsystem's overhead (instrumented vs
# baseline trial 1).
bench-obs:
	$(GO) test -bench='BenchmarkTrial1(Baseline|Instrumented)$$' -benchmem -run='^$$' .

# bench-parallel measures the run engine's fan-out speedup on the
# 16-point perf sweep (sequential vs one worker per CPU).
bench-parallel:
	$(GO) test -bench='BenchmarkParallelSweep16' -benchtime=2x -run='^$$' .

# fuzz exercises the trace-line round trip for a short burst.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParseLine -fuzztime=30s ./internal/trace
