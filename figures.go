package vanetsim

import (
	"fmt"
	"math"
	"strings"

	"vanetsim/internal/metrics"
	"vanetsim/internal/sim"
)

// Figure is the data behind one of the paper's plots: a single 2-D series
// with axis labels, renderable as ASCII or exportable as CSV.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X, Y   []float64
}

// Len returns the number of points.
func (f Figure) Len() int { return len(f.X) }

// CSV renders the figure as two-column CSV with a header.
func (f Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n%s,%s\n", f.ID, f.Title, f.XLabel, f.YLabel)
	for i := range f.X {
		fmt.Fprintf(&b, "%g,%g\n", f.X[i], f.Y[i])
	}
	return b.String()
}

// ASCII renders a scatter plot on a width×height character grid with
// axis annotations — enough to eyeball the paper's curve shapes in a
// terminal.
func (f Figure) ASCII(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	if len(f.X) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	xmin, xmax := minMax(f.X)
	ymin, ymax := minMax(f.Y)
	if ymin > 0 {
		ymin = 0 // anchor rate/delay plots at zero like the paper's axes
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i := range f.X {
		c := int((f.X[i] - xmin) / (xmax - xmin) * float64(width-1))
		r := int((f.Y[i] - ymin) / (ymax - ymin) * float64(height-1))
		row := height - 1 - r
		if row >= 0 && row < height && c >= 0 && c < width {
			grid[row][c] = '*'
		}
	}
	for r, line := range grid {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%9.3g ", ymax)
		case height - 1:
			label = fmt.Sprintf("%9.3g ", ymin)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s+%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s%-*g%*g\n", "", width/2, xmin, width/2, xmax)
	fmt.Fprintf(&b, "%10s x: %s, y: %s\n", "", f.XLabel, f.YLabel)
	return b.String()
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// delayFigure builds a delay-vs-packet-ID figure from a series, optionally
// truncated to the transient prefix (the paper pairs every overall plot
// with a zoomed transient one).
func delayFigure(id, title string, s *metrics.DelaySeries, transientOnly bool) Figure {
	pts := s.Points()
	if transientOnly {
		cut := s.TruncationIndex()
		if cut == 0 && len(pts) > 150 {
			cut = 150 // fall back to the paper's eyeballed window
		}
		if cut < len(pts) {
			pts = pts[:cut]
		}
	}
	f := Figure{ID: id, Title: title, XLabel: "packet ID", YLabel: "one-way delay (s)"}
	for _, p := range pts {
		f.X = append(f.X, float64(p.ID))
		f.Y = append(f.Y, float64(p.Delay))
	}
	return f
}

// throughputFigure builds a throughput-vs-time figure.
func throughputFigure(id, title string, tp *metrics.Throughput, until sim.Time) Figure {
	f := Figure{ID: id, Title: title, XLabel: "time (s)", YLabel: "throughput (Mbps)"}
	for _, p := range tp.SeriesUntil(until) {
		f.X = append(f.X, float64(p.T))
		f.Y = append(f.Y, p.Mbps)
	}
	return f
}

// Fig5 — Trial 1 overall one-way delay, platoon 1 (middle-vehicle flow).
func Fig5(r *TrialResult) Figure {
	return delayFigure("Fig5", "Trial 1 one-way delay (platoon 1)", r.Platoon1.MiddleDelays(), false)
}

// Fig6 — Trial 1 transient-state one-way delay, platoon 1.
func Fig6(r *TrialResult) Figure {
	return delayFigure("Fig6", "Trial 1 transient-state one-way delay (platoon 1)", r.Platoon1.MiddleDelays(), true)
}

// Fig7 — Trial 1 throughput over time, platoon 1.
func Fig7(r *TrialResult) Figure {
	return throughputFigure("Fig7", "Trial 1 throughput (platoon 1)", r.Platoon1.Throughput(), r.Config.Duration)
}

// Fig8 — Trial 2 overall one-way delay, platoon 1.
func Fig8(r *TrialResult) Figure {
	return delayFigure("Fig8", "Trial 2 one-way delay (platoon 1)", r.Platoon1.MiddleDelays(), false)
}

// Fig9 — Trial 2 transient-state one-way delay, platoon 1.
func Fig9(r *TrialResult) Figure {
	return delayFigure("Fig9", "Trial 2 transient-state one-way delay (platoon 1)", r.Platoon1.MiddleDelays(), true)
}

// Fig10 — Trial 2 throughput over time, platoon 1.
func Fig10(r *TrialResult) Figure {
	return throughputFigure("Fig10", "Trial 2 throughput (platoon 1)", r.Platoon1.Throughput(), r.Config.Duration)
}

// Fig11 — Trial 3 overall one-way delay, platoon 1.
func Fig11(r *TrialResult) Figure {
	return delayFigure("Fig11", "Trial 3 one-way delay (platoon 1)", r.Platoon1.MiddleDelays(), false)
}

// Fig12 — Trial 3 transient-state one-way delay, platoon 1.
func Fig12(r *TrialResult) Figure {
	return delayFigure("Fig12", "Trial 3 transient-state one-way delay (platoon 1)", r.Platoon1.MiddleDelays(), true)
}

// Fig13 — Trial 3 overall one-way delay, platoon 2.
func Fig13(r *TrialResult) Figure {
	return delayFigure("Fig13", "Trial 3 one-way delay (platoon 2)", r.Platoon2.MiddleDelays(), false)
}

// Fig14 — Trial 3 transient-state one-way delay, platoon 2.
func Fig14(r *TrialResult) Figure {
	return delayFigure("Fig14", "Trial 3 transient-state one-way delay (platoon 2)", r.Platoon2.MiddleDelays(), true)
}

// Fig15 — Trial 3 throughput over time, platoon 1.
func Fig15(r *TrialResult) Figure {
	return throughputFigure("Fig15", "Trial 3 throughput (platoon 1)", r.Platoon1.Throughput(), r.Config.Duration)
}
