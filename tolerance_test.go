package vanetsim_test

import (
	"math"
	"strings"
	"sync"
	"testing"

	"vanetsim"
)

// TestToleranceStudyInvariance is the sequential-stopping determinism
// gate at the library surface: the same tolerance must yield a
// byte-identical study at -j1 vs -j8 and at batch sizes 1 vs 4 (and an
// awkward 3), even though the executed-replication count legitimately
// differs with batching (overshoot past the stopping point).
func TestToleranceStudyInvariance(t *testing.T) {
	cfg := vanetsim.Trial3()
	cfg.Duration = vanetsim.Seconds(40)
	type variant struct {
		batch, workers int
	}
	var ref *vanetsim.ToleranceStudy
	var refOut string
	for _, v := range []variant{{1, 1}, {4, 1}, {1, 8}, {4, 8}, {3, 2}} {
		st, err := vanetsim.RunReplicationsTolerance(cfg, 0.6, vanetsim.ToleranceOptions{
			MinReps:   2,
			MaxReps:   8,
			BatchSize: v.batch,
			Pool:      vanetsim.Pool{Workers: v.workers},
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refOut = st, st.String()
			continue
		}
		if out := st.String(); out != refOut {
			t.Fatalf("batch=%d workers=%d: study differs:\n--- ref\n%s--- got\n%s", v.batch, v.workers, refOut, out)
		}
		if st.Met != ref.Met || len(st.Runs) != len(ref.Runs) {
			t.Fatalf("batch=%d workers=%d: verdict differs (met %v runs %d vs met %v runs %d)",
				v.batch, v.workers, st.Met, len(st.Runs), ref.Met, len(ref.Runs))
		}
		for i := range st.Runs {
			if st.Runs[i] != ref.Runs[i] {
				t.Fatalf("batch=%d workers=%d: replication %d differs: %+v vs %+v",
					v.batch, v.workers, i, st.Runs[i], ref.Runs[i])
			}
		}
	}
	if !ref.Met {
		t.Fatalf("reference study did not meet its tolerance:\n%s", refOut)
	}
	// Batch overshoot exists (batch 4 with an early stop executes past
	// N), but nothing rendered may depend on it.
	if strings.Contains(refOut, "executed") || strings.Contains(refOut, "Executed") {
		t.Fatalf("report leaks the execution-only overshoot count:\n%s", refOut)
	}
}

// TestToleranceHitTDMA: TDMA has no cross-seed randomness at this scale,
// so every CI collapses at the minimum replication count and any
// tolerance is met there — pinning the tolerance-hit path and the
// overshoot accounting (batch 4 executes one extra run past N=3).
func TestToleranceHitTDMA(t *testing.T) {
	cfg := vanetsim.Trial1()
	cfg.Duration = vanetsim.Seconds(40)
	st, err := vanetsim.RunReplicationsTolerance(cfg, 0.01, vanetsim.ToleranceOptions{
		MinReps: 3, MaxReps: 8, BatchSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Met || len(st.Runs) != 3 {
		t.Fatalf("met=%v runs=%d, want met at the 3-replication minimum", st.Met, len(st.Runs))
	}
	if st.Executed != 4 {
		t.Fatalf("executed = %d, want 4 (one batch)", st.Executed)
	}
	for _, m := range st.Precision {
		if !m.CI.Met(0.01) {
			t.Fatalf("metric %s not met in a met study: %+v", m.Name, m.CI)
		}
	}
	out := st.String()
	if !strings.Contains(out, "tolerance ±1% met after 3 replications") {
		t.Fatalf("report missing the verdict:\n%s", out)
	}
	if !strings.Contains(out, "achieved ±0.00%") {
		t.Fatalf("report missing achieved bounds:\n%s", out)
	}
}

// TestToleranceBudgetHit: a metric that never becomes observable (a
// duration too short for any packet to arrive) must exhaust the budget,
// report Met=false, and still state the achieved bounds and the missing
// count — never converge on a NaN interval.
func TestToleranceBudgetHit(t *testing.T) {
	cfg := vanetsim.Trial1()
	cfg.Duration = 0
	st, err := vanetsim.RunReplicationsTolerance(cfg, 0.5, vanetsim.ToleranceOptions{
		MinReps: 2, MaxReps: 3, BatchSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Met {
		t.Fatal("study with an all-missing metric reported met")
	}
	if len(st.Runs) != 3 || st.Executed != 3 {
		t.Fatalf("runs=%d executed=%d, want the full budget of 3", len(st.Runs), st.Executed)
	}
	if st.FirstMissing != 3 {
		t.Fatalf("FirstMissing = %d, want 3", st.FirstMissing)
	}
	out := st.String()
	if !strings.Contains(out, "NOT met (budget exhausted)") {
		t.Fatalf("report missing the budget verdict:\n%s", out)
	}
	if !strings.Contains(out, "missing in 3/3 replications") {
		t.Fatalf("report missing the missing-sample count:\n%s", out)
	}
}

// TestToleranceCacheHooks: Lookup/Store are the service's
// per-replication cache seam. A second study over the same config must
// be reconstructible entirely from stored entries — zero fresh
// simulations — and byte-identical to the first.
func TestToleranceCacheHooks(t *testing.T) {
	cfg := vanetsim.Trial1()
	cfg.Duration = vanetsim.Seconds(30)
	var mu sync.Mutex
	entries := make(map[uint64]vanetsim.Replication)
	stored := 0
	opts := vanetsim.ToleranceOptions{
		MinReps: 2, MaxReps: 6,
		Store: func(rep vanetsim.Replication) {
			mu.Lock()
			entries[rep.Seed] = rep
			stored++
			mu.Unlock()
		},
	}
	first, err := vanetsim.RunReplicationsTolerance(cfg, 0.05, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stored != first.Executed || stored == 0 {
		t.Fatalf("stored %d entries, want one per executed replication (%d)", stored, first.Executed)
	}
	fresh := 0
	opts.Store = func(vanetsim.Replication) { mu.Lock(); fresh++; mu.Unlock() }
	opts.Lookup = func(seed uint64) (vanetsim.Replication, bool) {
		mu.Lock()
		defer mu.Unlock()
		rep, ok := entries[seed]
		return rep, ok
	}
	second, err := vanetsim.RunReplicationsTolerance(cfg, 0.05, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fresh != 0 {
		t.Fatalf("%d fresh simulations on a fully cached study, want 0", fresh)
	}
	if first.String() != second.String() {
		t.Fatalf("cached study differs from fresh:\n--- fresh\n%s--- cached\n%s", first, second)
	}
}

func TestToleranceValidation(t *testing.T) {
	cfg := vanetsim.Trial1()
	cfg.Duration = vanetsim.Seconds(5)
	if _, err := vanetsim.RunReplicationsTolerance(cfg, 0.05, vanetsim.ToleranceOptions{
		Metrics: []string{"p99 jitter"},
	}); err == nil || !strings.Contains(err.Error(), "unknown stopping metric") {
		t.Fatalf("unknown metric accepted: %v", err)
	}
	if _, err := vanetsim.RunReplicationsTolerance(cfg, 0, vanetsim.ToleranceOptions{}); err == nil {
		t.Fatal("zero tolerance accepted")
	}
	if _, err := vanetsim.RunReplicationsTolerance(cfg, 0.05, vanetsim.ToleranceOptions{MaxReps: 1}); err == nil {
		t.Fatal("MaxReps 1 accepted")
	}
	if _, err := vanetsim.RunPairedReplicationsTolerance(cfg, cfg, 0.05, vanetsim.ToleranceOptions{MinReps: 1}); err == nil {
		t.Fatal("paired MinReps 1 accepted")
	}
}

// TestPairedCRNStudy: the common-random-numbers comparison. Both arms
// run under the same derived seeds, so the paired-difference CI on
// throughput must be tighter than the unpaired comparison of the same
// runs whenever the arms are positively correlated — here two 802.11
// configurations differing only in packet size, whose contention noise
// is seed-driven and shared.
func TestPairedCRNStudy(t *testing.T) {
	a := vanetsim.Trial3() // 802.11, 1000 B
	a.Duration = vanetsim.Seconds(40)
	b := a
	b.Name = "trial3-500B"
	b.PacketSize = 500
	// MinReps 5 pulls in the seed whose congestion event hits BOTH arms
	// (the shared-noise case CRN exists for); with only the first four
	// seeds the 1000 B arm happens to have zero throughput variance and
	// the comparison is degenerate.
	opts := vanetsim.ToleranceOptions{
		MinReps: 5, MaxReps: 8,
		Metrics: []string{vanetsim.MetricTput},
	}
	st, err := vanetsim.RunPairedReplicationsTolerance(a, b, 0.3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Runs) < 5 {
		t.Fatalf("paired runs = %d, want at least MinReps", len(st.Runs))
	}
	for _, pr := range st.Runs {
		if pr.A.Seed != pr.Seed || pr.B.Seed != pr.Seed {
			t.Fatalf("arms ran different seeds: pair %d has A=%d B=%d", pr.Seed, pr.A.Seed, pr.B.Seed)
		}
	}
	d := st.Diffs[0]
	if d.Name != vanetsim.MetricTput {
		t.Fatalf("diff metric = %q", d.Name)
	}
	// The paired mean difference must agree with the difference of means
	// over the same pairs (no missing tput samples here).
	if d.Missing != 0 || math.Abs(d.DiffCI.Mean-(d.MeanA-d.MeanB)) > 1e-12 {
		t.Fatalf("paired diff %+v inconsistent with arm means %v − %v", d.DiffCI, d.MeanA, d.MeanB)
	}
	if d.MeanA <= d.MeanB {
		t.Fatalf("1000 B arm should out-carry 500 B arm: A=%v B=%v", d.MeanA, d.MeanB)
	}
	if vr := d.VarianceReduction(); !(vr > 1.1) {
		t.Fatalf("CRN pairing shows no variance reduction: unpaired ±%v vs paired ±%v (%.2fx)",
			d.UnpairedHalfWidth, d.DiffCI.HalfWidth, vr)
	}
	// Determinism at different pool widths, same as the single-arm study.
	opts.Pool = vanetsim.Pool{Workers: 8}
	opts.BatchSize = 2
	st2, err := vanetsim.RunPairedReplicationsTolerance(a, b, 0.3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.String() != st2.String() {
		t.Fatalf("paired study not invariant to pool/batch:\n--- ref\n%s--- got\n%s", st, st2)
	}
}
