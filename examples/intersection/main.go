// Intersection: the paper's full two-platoon scenario under all three
// trial configurations, with the delay and throughput figures rendered as
// ASCII plots — a terminal rendition of the paper's Figs. 5–15.
//
//	go run ./examples/intersection
package main

import (
	"fmt"

	"vanetsim"
)

func main() {
	r1 := vanetsim.RunTrial(vanetsim.Trial1())
	r2 := vanetsim.RunTrial(vanetsim.Trial2())
	r3 := vanetsim.RunTrial(vanetsim.Trial3())

	fmt.Println("Trial 1 — TDMA, 1,000-byte packets")
	fmt.Print(vanetsim.Fig5(r1).ASCII(70, 12))
	fmt.Println()
	fmt.Print(vanetsim.Fig6(r1).ASCII(70, 12))
	fmt.Println()
	fmt.Print(vanetsim.Fig7(r1).ASCII(70, 12))

	fmt.Println("\nTrial 2 — TDMA, 500-byte packets (delay unchanged, throughput halved)")
	fmt.Print(vanetsim.Fig8(r2).ASCII(70, 12))
	fmt.Println()
	fmt.Print(vanetsim.Fig10(r2).ASCII(70, 12))

	fmt.Println("\nTrial 3 — 802.11, 1,000-byte packets (both metrics far better)")
	fmt.Print(vanetsim.Fig11(r3).ASCII(70, 12))
	fmt.Println()
	fmt.Print(vanetsim.Fig13(r3).ASCII(70, 12))
	fmt.Println()
	fmt.Print(vanetsim.Fig15(r3).ASCII(70, 12))

	fmt.Println("\nSide-by-side summary:")
	var rows []vanetsim.ThroughputRow
	for _, r := range []*vanetsim.TrialResult{r1, r2, r3} {
		rows = append(rows, vanetsim.ThroughputTable(r)[0])
	}
	fmt.Print(vanetsim.FormatThroughputTable(rows))
	fmt.Println()
	fmt.Print(vanetsim.FormatStoppingTable(vanetsim.StoppingTable(r1, r2, r3)))
}
