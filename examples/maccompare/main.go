// MAC comparison sweep: run the intersection scenario over the full
// MAC × packet-size grid (including the combination the paper did not
// run: 802.11 with 500-byte packets) and print a comparison matrix. This
// is the experiment behind the paper's §III.E discussion and its closing
// recommendation of 802.11 with 1,000-byte packets.
//
//	go run ./examples/maccompare
package main

import (
	"fmt"

	"vanetsim"
)

func main() {
	macs := []vanetsim.MACType{vanetsim.MACTDMA, vanetsim.MAC80211}
	sizes := []int{500, 1000}

	fmt.Printf("%-8s %6s | %10s %10s | %10s %12s\n",
		"MAC", "bytes", "avg dly(s)", "steady(s)", "avg Mbps", "1st-pkt gap%")
	for _, mac := range macs {
		for _, size := range sizes {
			cfg := vanetsim.Trial1()
			cfg.Name = fmt.Sprintf("%v/%d", mac, size)
			cfg.MAC = mac
			cfg.PacketSize = size
			r := vanetsim.RunTrial(cfg)

			d := r.Platoon1.MiddleDelays()
			_, steady := d.SteadyState()
			tput := r.Platoon1.Throughput().Summary(cfg.Duration)
			first, _ := d.First()
			frac := vanetsim.PaperStoppingAnalysis(first).FractionOfSeparation

			fmt.Printf("%-8v %6d | %10.4f %10.4f | %10.4f %11.1f%%\n",
				mac, size, d.Summary().Mean, steady, tput.Mean, frac*100)
		}
	}

	fmt.Println("\nReading the matrix the way the paper does:")
	fmt.Println("  * under TDMA, packet size does not move delay (the slot wait dominates)")
	fmt.Println("    but throughput scales with it (one packet per slot);")
	fmt.Println("  * 802.11 wins both metrics at 1,000 bytes — the paper's recommendation;")
	fmt.Println("  * the grid point the paper skipped (802.11/500B) shows why: halving the")
	fmt.Println("    packet doubles the per-packet overhead share and pushes 802.11 toward")
	fmt.Println("    saturation, raising its delay too.")
}
