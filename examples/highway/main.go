// Highway emergency braking: the "larger and more complex vehicular
// configuration" the paper's conclusion calls for. An N-vehicle platoon
// cruises at 50 mph; the lead brakes hard; each follower brakes only after
// its EBL indication arrives plus 0.7 s of driver reaction. The MAC's
// latency becomes stopped-distance margin — or a rear-end collision.
//
//	go run ./examples/highway
package main

import (
	"fmt"
	"log"

	"vanetsim"
)

func main() {
	for _, n := range []int{4, 6, 10} {
		fmt.Printf("=== %d-vehicle platoon, 25 m gaps, 50 mph, 6 m/s² braking ===\n", n)
		for _, mac := range []vanetsim.MACType{vanetsim.MACTDMA, vanetsim.MAC80211} {
			r, err := vanetsim.RunHighway(vanetsim.DefaultHighway(mac, n))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%v: %d collision(s)\n", mac, r.Collisions)
			fmt.Printf("  %-8s %14s %12s %10s %9s\n", "vehicle", "indication(s)", "blind(m)", "gap(m)", "crashed")
			for _, ind := range r.Indications {
				fmt.Printf("  %-8v %14.4f %12.1f %10.1f %9v\n",
					ind.Vehicle, float64(ind.IndicationDelay), ind.DistanceBlind, ind.FinalGap, ind.Collided)
			}
		}
		fmt.Println()
	}
	fmt.Println("The TDMA slot wait costs tens of metres of blind travel; 802.11's")
	fmt.Println("millisecond indication keeps the whole chain inside its gaps.")
}
