// Quickstart: run the paper's base trial (TDMA, 1,000-byte packets) for a
// shortened 60 simulated seconds and print the headline measurements.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"vanetsim"
)

func main() {
	cfg := vanetsim.Trial1()
	cfg.Duration = vanetsim.Seconds(60)
	result := vanetsim.RunTrial(cfg)

	fmt.Printf("ran %v: %v MAC, %d-byte packets, %.0f s\n\n",
		cfg.Name, cfg.MAC, cfg.PacketSize, float64(cfg.Duration))

	// Per-vehicle one-way delay, as the paper reports it.
	fmt.Println("one-way delay:")
	fmt.Print(vanetsim.FormatDelayTable(vanetsim.DelayTable(result)))

	// Platoon throughput with the 95% confidence analysis.
	fmt.Println("\nthroughput:")
	fmt.Print(vanetsim.FormatThroughputTable(vanetsim.ThroughputTable(result)))

	// The safety punchline: how much of the 25 m gap is gone before the
	// trailing driver learns the lead is braking?
	fmt.Println("\nstopping-distance analysis:")
	fmt.Print(vanetsim.FormatStoppingTable(vanetsim.StoppingTable(result)))
}
