// DoS resilience: the security trade-off the paper's §III.E raises. It
// recommends 802.11 for performance but notes that "a combination of TDMA
// and Frequency Hopping Spread Spectrum (FHSS) may be used as a means to
// help prevent Denial-of-Service attacks". This example quantifies that
// trade-off: a stopped platoon streams EBL status datagrams while an
// attacker 30 m away floods the channel, and we measure how much of the
// safety traffic survives per MAC.
//
//	go run ./examples/dosresilience
package main

import (
	"fmt"

	"vanetsim"
)

func main() {
	type variant struct {
		name string
		mod  func(*vanetsim.JammingConfig)
	}
	variants := []variant{
		{"802.11, no attack", func(c *vanetsim.JammingConfig) {
			c.MAC = vanetsim.MAC80211
			c.Jam.StartAt = 1e9
		}},
		{"802.11, jammed", func(c *vanetsim.JammingConfig) {
			c.MAC = vanetsim.MAC80211
		}},
		{"TDMA, jammed", func(c *vanetsim.JammingConfig) {
			c.MAC = vanetsim.MACTDMA
		}},
		{"TDMA+FHSS/8, jammed", func(c *vanetsim.JammingConfig) {
			c.MAC = vanetsim.MACTDMA
			c.HopChannels = 8
		}},
		{"TDMA+FHSS/8, sweep-jammed", func(c *vanetsim.JammingConfig) {
			c.MAC = vanetsim.MACTDMA
			c.HopChannels = 8
			c.Jam.Sweep = 8
		}},
	}

	fmt.Println("60 s run; attacker transmits continuously from t = 10 s.")
	fmt.Printf("%-28s %10s %12s\n", "configuration", "delivery", "avg delay(s)")
	for _, v := range variants {
		cfg := vanetsim.DefaultJamming(vanetsim.MAC80211)
		v.mod(&cfg)
		r, err := vanetsim.RunJamming(cfg)
		if err != nil {
			fmt.Printf("%-28s %s\n", v.name, err)
			continue
		}
		avg := 0.0
		n := 0
		for _, fl := range r.Flows {
			sm := fl.Delays.Summary()
			avg += sm.Mean * float64(sm.N)
			n += sm.N
		}
		if n > 0 {
			avg /= float64(n)
		}
		fmt.Printf("%-28s %9.1f%% %12.4f\n", v.name, r.OverallDelivery*100, avg)
	}

	fmt.Println()
	fmt.Println("The performance/security trade-off, quantified: the jammer silences")
	fmt.Println("both plain MACs outright (only pre-attack traffic gets through), but")
	fmt.Println("hopping over 8 channels confines the attacker to ~1/8 of the slots.")
}
