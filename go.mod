module vanetsim

go 1.22
