// Golden determinism gate for hot-path optimisation work: the discrete-event
// core, the PHY, and the trace codec may get faster, but they may not change
// a single output byte. The golden file pins SHA-256 digests of the trace,
// a figure CSV, the delay table, and the (host-clock-filtered) telemetry
// NDJSON for one TDMA and one 802.11 run; it was generated before the PR 3
// optimisations and must keep matching after them.
//
// Regenerate (only when an intentional behaviour change lands) with:
//
//	go test -run TestHotPathDeterminismGolden -update-golden .
package vanetsim_test

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vanetsim"
	"vanetsim/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/determinism_golden.json")

const goldenPath = "testdata/determinism_golden.json"

// goldenDigests pins one configuration's output bytes.
type goldenDigests struct {
	Trace      string `json:"trace_sha256"`
	FigureCSV  string `json:"figure_csv_sha256"`
	DelayTable string `json:"delay_table_sha256"`
	Telemetry  string `json:"telemetry_ndjson_sha256"`
}

func sha(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// filteredNDJSON renders the telemetry snapshot with the host-execution
// gauges removed: the host-clock pair (run/wall_*) is legitimately
// non-deterministic, and the shard-pipeline profile (sched/shard_*)
// necessarily varies with the configured shard count. Simulation
// behaviour never reads either.
func filteredNDJSON(t *testing.T, snap *vanetsim.Telemetry) []byte {
	t.Helper()
	var raw bytes.Buffer
	if err := snap.NDJSON(&raw); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	sc := bufio.NewScanner(&raw)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if strings.Contains(sc.Text(), `"run/wall`) ||
			strings.Contains(sc.Text(), `"sched/shard_`) {
			continue
		}
		out.Write(sc.Bytes())
		out.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func runGoldenCase(t *testing.T, cfg vanetsim.TrialConfig, fig func(*vanetsim.TrialResult) vanetsim.Figure) goldenDigests {
	t.Helper()
	cfg.Duration = vanetsim.Seconds(30)
	cfg.CollectTrace = true
	cfg.Telemetry = true
	// The invariant checker must observe without perturbing: digests are
	// pinned with it armed, so any behavioural leak fails the gate.
	cfg.Check = true
	r := vanetsim.RunTrial(cfg)
	if n := len(r.Violations); n > 0 {
		t.Fatalf("%d invariant violation(s), first: %v", n, r.Violations[0].Error())
	}

	var tr bytes.Buffer
	if err := trace.WriteAll(&tr, r.Trace); err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	return goldenDigests{
		Trace:      sha(tr.Bytes()),
		FigureCSV:  sha([]byte(fig(r).CSV())),
		DelayTable: sha([]byte(vanetsim.FormatDelayTable(vanetsim.DelayTable(r)))),
		Telemetry:  sha(filteredNDJSON(t, r.Telemetry)),
	}
}

// checkGolden compares got against the pinned digests, or — under
// -update-golden — merges got into the golden file, leaving keys owned by
// other tests untouched.
func checkGolden(t *testing.T, got map[string]goldenDigests) {
	t.Helper()
	if *updateGolden {
		merged := map[string]goldenDigests{}
		if raw, err := os.ReadFile(goldenPath); err == nil {
			if err := json.Unmarshal(raw, &merged); err != nil {
				t.Fatal(err)
			}
		}
		for name, g := range got {
			merged[name] = g
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(merged, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d cases)", goldenPath, len(merged))
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	var want map[string]goldenDigests
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	for name, g := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: missing from golden file (run with -update-golden)", name)
			continue
		}
		if g != w {
			t.Errorf("%s: output digests changed:\n got %+v\nwant %+v", name, g, w)
		}
	}
}

func TestHotPathDeterminismGolden(t *testing.T) {
	checkGolden(t, map[string]goldenDigests{
		"trial1-tdma":  runGoldenCase(t, vanetsim.Trial1(), vanetsim.Fig5),
		"trial3-80211": runGoldenCase(t, vanetsim.Trial3(), vanetsim.Fig11),
	})
}
