// Ablation benchmarks: sweeps over the design choices DESIGN.md calls out,
// beyond the paper's own three trials. Each reports the quantities that
// explain *why* the paper's curves look the way they do.
package vanetsim_test

import (
	"fmt"
	"testing"

	"vanetsim"
)

// shortTrial returns a trial-1 variant trimmed to 80 simulated seconds —
// long enough for a clear steady state, cheap enough to sweep.
func shortTrial() vanetsim.TrialConfig {
	cfg := vanetsim.Trial1()
	cfg.Duration = vanetsim.Seconds(80)
	return cfg
}

// Ablation: interface-queue capacity. With ns-2's window of 20 per flow
// (40 packets in flight at the lead), the steady-state delay is
// min(inflight, queue)×frame — small queues cap the plateau and force
// drops.
func BenchmarkAblationQueueCapacity(b *testing.B) {
	for _, cap := range []int{10, 25, 50, 100} {
		cap := cap
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := shortTrial()
				cfg.QueueCap = cap
				r := vanetsim.RunTrial(cfg)
				_, steady := r.Platoon1.MiddleDelays().SteadyState()
				b.ReportMetric(steady, "steady_s")
			}
		})
	}
}

// Ablation: TCP maximum window. The paper's multi-second TDMA plateau is
// window-limited (2×cwnd packets queued at the lead), so the plateau
// scales with the window until the 50-packet ifq binds instead.
func BenchmarkAblationTCPWindow(b *testing.B) {
	for _, win := range []float64{5, 10, 20, 40} {
		win := win
		b.Run(fmt.Sprintf("cwnd=%v", win), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := shortTrial()
				cfg.TCPWindow = win
				r := vanetsim.RunTrial(cfg)
				_, steady := r.Platoon1.MiddleDelays().SteadyState()
				b.ReportMetric(steady, "steady_s")
			}
		})
	}
}

// Ablation: TDMA radio rate. The slot is sized for a maximal packet, so
// the radio rate sets the frame duration and with it both the
// initial-packet delay (the paper's 0.24 s anchor) and the plateau.
func BenchmarkAblationTDMARate(b *testing.B) {
	for _, rate := range []float64{1e6, 2e6, 11e6} {
		rate := rate
		b.Run(fmt.Sprintf("rate=%.0fMbps", rate/1e6), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := shortTrial()
				cfg.TDMARateBps = rate
				r := vanetsim.RunTrial(cfg)
				first, _ := r.Platoon1.TrailingDelays().First()
				_, steady := r.Platoon1.MiddleDelays().SteadyState()
				b.ReportMetric(float64(first), "first_s")
				b.ReportMetric(steady, "steady_s")
			}
		})
	}
}

// Ablation: DropTail vs PriQueue. Routing-protocol priority does not move
// the paper's data-plane numbers in this small static-route scenario —
// which is why the paper can treat "drop-tail" and "PriQueue" as one
// fixed parameter.
func BenchmarkAblationQueueType(b *testing.B) {
	for _, q := range []struct {
		name string
		typ  vanetsim.QueueType
	}{
		{"droptail", vanetsim.QueueDropTail},
		{"priqueue", vanetsim.QueuePri},
		// RED keeps the standing queue short: under TDMA the steady-state
		// plateau drops well below the drop-tail level, at some
		// throughput cost from early drops.
		{"red", vanetsim.QueueRED},
	} {
		q := q
		b.Run(q.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := shortTrial()
				cfg.Queue = q.typ
				r := vanetsim.RunTrial(cfg)
				_, steady := r.Platoon1.MiddleDelays().SteadyState()
				sm := r.Platoon1.Throughput().Summary(cfg.Duration)
				b.ReportMetric(steady, "steady_s")
				b.ReportMetric(sm.Mean, "avg_Mbps")
			}
		})
	}
}

// Ablation: DoS resilience (the §III.E security trade-off). A
// single-channel jammer silences both plain MACs; FHSS hopping over 8
// channels confines it to ~1/8 of the slots.
func BenchmarkAblationDoSResilience(b *testing.B) {
	for _, v := range []struct {
		name string
		mod  func(*vanetsim.JammingConfig)
	}{
		{"80211-jammed", func(c *vanetsim.JammingConfig) { c.MAC = vanetsim.MAC80211 }},
		{"tdma-jammed", func(c *vanetsim.JammingConfig) { c.MAC = vanetsim.MACTDMA }},
		{"tdma-fhss8-jammed", func(c *vanetsim.JammingConfig) {
			c.MAC = vanetsim.MACTDMA
			c.HopChannels = 8
		}},
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := vanetsim.DefaultJamming(vanetsim.MAC80211)
				v.mod(&cfg)
				r, err := vanetsim.RunJamming(cfg)
				if err != nil {
					b.Fatalf("RunJamming: %v", err)
				}
				b.ReportMetric(r.OverallDelivery, "delivery")
			}
		})
	}
}

// Ablation: PHY reception model. ns-2's pairwise capture versus an
// aggregate-SINR decision — in the paper's sparse 6-node scenario the
// choice barely matters (few concurrent transmitters), which justifies
// inheriting ns-2's simpler model.
func BenchmarkAblationPhyModel(b *testing.B) {
	for _, v := range []struct {
		name string
		sinr bool
	}{{"capture", false}, {"sinr", true}} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := vanetsim.Trial3()
				cfg.Duration = vanetsim.Seconds(80)
				cfg.SINRPhy = v.sinr
				r := vanetsim.RunTrial(cfg)
				sm := r.Platoon1.Throughput().Summary(cfg.Duration)
				b.ReportMetric(sm.Mean, "avg_Mbps")
				b.ReportMetric(r.Platoon1.MiddleDelays().Summary().Mean, "avg_delay_s")
			}
		})
	}
}

// Methodology: independent replications of trial 3 (the paper used a
// single run with batch means). Reports the cross-seed 95% CI.
func BenchmarkReplicationStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := vanetsim.Trial3()
		cfg.Duration = vanetsim.Seconds(60)
		st, err := vanetsim.RunReplications(cfg, []uint64{1, 2, 3, 4, 5})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(st.TputCI.Mean, "tput_Mbps")
		b.ReportMetric(st.TputCI.HalfWidth, "tput_ci95")
		b.ReportMetric(st.DelayCI.Mean, "delay_s")
	}
}

// Ablation: platoon size under TDMA (highway scenario). The TDMA frame
// grows with the node count, so the brake-indication latency — and the
// crash risk — scales with platoon size. The paper's 3-vehicle platoons
// are the optimistic end.
func BenchmarkAblationPlatoonSize(b *testing.B) {
	for _, n := range []int{3, 6, 10} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := vanetsim.RunHighway(vanetsim.DefaultHighway(vanetsim.MACTDMA, n))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.Indications[0].IndicationDelay), "first_indication_s")
				b.ReportMetric(float64(r.Collisions), "collisions")
			}
		})
	}
}
