package vanetsim_test

import (
	"bytes"
	"testing"

	"vanetsim"
	"vanetsim/internal/trace"
)

// TestTelemetryDeterminism proves the telemetry subsystem is
// observation-only: for both MACs, the same seed produces byte-identical
// traces and figures whether telemetry is collected or not.
func TestTelemetryDeterminism(t *testing.T) {
	cases := []struct {
		name string
		cfg  vanetsim.TrialConfig
		fig  func(*vanetsim.TrialResult) vanetsim.Figure
	}{
		{"trial1-tdma", vanetsim.Trial1(), vanetsim.Fig5},
		{"trial3-80211", vanetsim.Trial3(), vanetsim.Fig11},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := tc.cfg
			base.Duration = vanetsim.Seconds(30)
			base.CollectTrace = true

			off := base
			off.Telemetry = false
			on := base
			on.Telemetry = true

			rOff := vanetsim.RunTrial(off)
			rOn := vanetsim.RunTrial(on)

			if rOff.Telemetry != nil {
				t.Fatal("telemetry snapshot present with Telemetry off")
			}
			if rOn.Telemetry == nil {
				t.Fatal("telemetry snapshot missing with Telemetry on")
			}

			var bOff, bOn bytes.Buffer
			if err := trace.WriteAll(&bOff, rOff.Trace); err != nil {
				t.Fatal(err)
			}
			if err := trace.WriteAll(&bOn, rOn.Trace); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bOff.Bytes(), bOn.Bytes()) {
				t.Errorf("trace differs with telemetry on: %d vs %d bytes",
					bOff.Len(), bOn.Len())
			}

			if csvOff, csvOn := tc.fig(rOff).CSV(), tc.fig(rOn).CSV(); csvOff != csvOn {
				t.Error("figure CSV differs with telemetry on")
			}
			if tblOff, tblOn := vanetsim.FormatDelayTable(vanetsim.DelayTable(rOff)),
				vanetsim.FormatDelayTable(vanetsim.DelayTable(rOn)); tblOff != tblOn {
				t.Error("delay table differs with telemetry on")
			}

			// Snapshot sanity: the run produced traffic, so the harvested
			// counters cannot be empty.
			snap := rOn.Telemetry
			if n, ok := snap.Counter("sched/events_executed"); !ok || n == 0 {
				t.Errorf("sched/events_executed = %d, %v; want > 0", n, ok)
			}
			if n, ok := snap.Counter("phy/tx_frames"); !ok || n == 0 {
				t.Errorf("phy/tx_frames = %d, %v; want > 0", n, ok)
			}
			if n, ok := snap.Counter("tcp/segments_sent"); !ok || n == 0 {
				t.Errorf("tcp/segments_sent = %d, %v; want > 0", n, ok)
			}
			histName := "mac/tdma/slot_wait_s"
			if base.MAC == vanetsim.MAC80211 {
				histName = "mac/dcf/service_time_s"
			}
			if h, ok := snap.Histogram(histName); !ok || h.Count == 0 {
				t.Errorf("%s count = %v, %v; want > 0", histName, h.Count, ok)
			}
		})
	}
}
