// Telemetry overhead benchmark pair: BenchmarkTrial1Baseline and
// BenchmarkTrial1Instrumented run the identical deterministic trial with
// telemetry off and on. Compare them with
//
//	go test -bench='BenchmarkTrial1(Baseline|Instrumented)' -benchmem .
//
// The instrumented run is expected to stay within ~10% of the baseline:
// counters are harvested once after the run, so the only per-event costs
// are the scheduler's per-kind tally, the queue decorator's gauge/series
// updates, and a few histogram observations per packet.
package vanetsim_test

import (
	"testing"

	"vanetsim"
)

func benchTrial1(b *testing.B, telemetry bool) {
	cfg := vanetsim.Trial1()
	cfg.Duration = vanetsim.Seconds(40)
	cfg.Telemetry = telemetry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := vanetsim.RunTrial(cfg)
		if telemetry {
			if r.Telemetry == nil {
				b.Fatal("missing telemetry snapshot")
			}
			if n, ok := r.Telemetry.Counter("sched/events_executed"); !ok || n == 0 {
				b.Fatal("empty telemetry snapshot")
			}
		} else if r.Telemetry != nil {
			b.Fatal("unexpected telemetry snapshot")
		}
	}
}

func BenchmarkTrial1Baseline(b *testing.B)     { benchTrial1(b, false) }
func BenchmarkTrial1Instrumented(b *testing.B) { benchTrial1(b, true) }

// BenchmarkTrial1Checked is the invariant checker's cost counterpart:
// the same trial with TrialConfig.Check armed. Compare against
// BenchmarkTrial1Baseline for the README's measured overhead number. It
// is deliberately NOT in the bench-guard baseline — the guard pins the
// checks-off hot path.
func BenchmarkTrial1Checked(b *testing.B) {
	cfg := vanetsim.Trial1()
	cfg.Duration = vanetsim.Seconds(40)
	cfg.Check = true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := vanetsim.RunTrial(cfg)
		if len(r.Violations) > 0 {
			b.Fatalf("checked run dirty: %v", r.Violations[0].Error())
		}
	}
}
