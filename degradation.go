package vanetsim

import (
	"fmt"
	"math"
	"strings"

	"vanetsim/internal/fault"
	"vanetsim/internal/packet"
	"vanetsim/internal/runner"
)

// Fault-injection facade: the impairment layer's types re-exported for
// callers configuring TrialConfig.Faults directly.

// FaultPlan is a trial's impairment recipe (error models, bursty loss,
// shadowing, outages). The zero value injects nothing and leaves every
// unfaulted output byte-identical.
type FaultPlan = fault.Plan

// FaultBernoulli is the independent per-frame/per-bit error model.
type FaultBernoulli = fault.Bernoulli

// FaultGilbertElliott is the two-state bursty loss model.
type FaultGilbertElliott = fault.GilbertElliott

// FaultOutage schedules one node's radio off the air for a window.
type FaultOutage = fault.Outage

// BurstFault returns a Gilbert–Elliott model with the given stationary
// loss probability and mean burst length in frames.
func BurstFault(lossProb, meanBurstLen float64) FaultGilbertElliott {
	return fault.Burst(lossProb, meanBurstLen)
}

// ParseFaultOutage parses the CLI outage syntax "node:start:duration"
// (node ID, then seconds) shared by cmd/vanetsim and cmd/eblsweep.
func ParseFaultOutage(s string) (FaultOutage, error) {
	var node int
	var start, dur float64
	if n, err := fmt.Sscanf(s, "%d:%g:%g", &node, &start, &dur); n != 3 || err != nil {
		return FaultOutage{}, fmt.Errorf("bad outage %q (want node:start:duration, e.g. 1:22:5)", s)
	}
	if node < 0 || dur < 0 {
		return FaultOutage{}, fmt.Errorf("bad outage %q: negative node or duration", s)
	}
	return FaultOutage{Node: packet.NodeID(node), Start: Seconds(start), Duration: Seconds(dur)}, nil
}

// DegradationConfig sweeps one trial configuration across increasing
// channel loss and reports how delay, throughput, and the braking-safety
// margin degrade — the fault layer's headline experiment.
type DegradationConfig struct {
	// Base is the trial to degrade; its Faults field is overwritten per
	// point. Telemetry is forced on (the sweep reads fault counters).
	Base TrialConfig
	// LossProbs are the stationary per-frame loss rates to sweep.
	LossProbs []float64
	// BurstLen selects the loss model: <= 1 uses independent Bernoulli
	// losses, > 1 uses Gilbert–Elliott bursts with this mean length.
	BurstLen float64
	// ShadowSigmaDB adds log-normal shadowing at every point (0 = off).
	ShadowSigmaDB float64
	// Outage, when Duration > 0, is applied verbatim at every point so the
	// sweep degrades an already-impaired network.
	Outage FaultOutage
	// Jobs bounds concurrent runs (<= 0 = one per CPU). Results are
	// reduced in sweep order, so output is identical at every width.
	Jobs int
}

// DefaultDegradation sweeps the paper's base trial on the given MAC from a
// clean channel to 30% loss in independent-loss mode.
func DefaultDegradation(mac MACType) DegradationConfig {
	base := Trial1()
	base.MAC = mac
	if mac == MAC80211 {
		base = Trial3()
	}
	base.Duration = Seconds(80)
	return DegradationConfig{
		Base:      base,
		LossProbs: []float64{0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3},
	}
}

// plan builds one sweep point's impairment recipe.
func (c DegradationConfig) plan(lossProb float64) FaultPlan {
	p := FaultPlan{ShadowSigmaDB: c.ShadowSigmaDB}
	if c.BurstLen > 1 {
		p.Burst = fault.Burst(lossProb, c.BurstLen)
	} else {
		p.Bernoulli = fault.Bernoulli{LossProb: lossProb}
	}
	if c.Outage.Duration > 0 {
		p.Outages = []FaultOutage{c.Outage}
	}
	return p
}

// DegradationPoint is one loss-rate step's measured outcome.
type DegradationPoint struct {
	LossProb float64
	// MeanDelayS and MaxDelayS summarise platoon 1's middle-vehicle flow;
	// FirstDelayS is its safety-critical initial-packet delay (NaN when
	// nothing was delivered).
	MeanDelayS  float64
	MaxDelayS   float64
	FirstDelayS float64
	// ThroughputMbps is the two platoons' combined mean goodput.
	ThroughputMbps float64
	// Retransmits counts TCP retransmissions across all flows; Injected
	// counts frames the error models destroyed.
	Retransmits uint64
	Injected    uint64
	// SafetyMarginM is the paper's 25 m following gap minus the minimum
	// safe gap at the measured indication delay (negative = crash region;
	// -Inf when no packet was ever delivered).
	SafetyMarginM float64
	Safe          bool
	// Violations counts runtime invariant violations when the base trial
	// ran with Check armed (always 0 otherwise).
	Violations int
}

// RunDegradation executes the sweep and returns one point per loss rate,
// in order.
func RunDegradation(cfg DegradationConfig) []DegradationPoint {
	if len(cfg.LossProbs) == 0 {
		return nil
	}
	model := DefaultBrakingModel()
	points := make([]DegradationPoint, len(cfg.LossProbs))
	runner.Each(runner.Pool{Workers: cfg.Jobs}, len(cfg.LossProbs),
		func(i int) (*TrialResult, error) {
			tc := cfg.Base
			tc.Telemetry = true
			tc.Faults = cfg.plan(cfg.LossProbs[i])
			return RunTrial(tc), nil
		},
		func(i int, r *TrialResult) error {
			points[i] = degradationPoint(cfg.Base, cfg.LossProbs[i], model, r)
			return nil
		})
	return points
}

// DegradationPointFrom computes one degradation row from a completed
// faulted trial (run with Telemetry on). base supplies the geometry the
// safety verdict is judged against.
func DegradationPointFrom(base TrialConfig, lossProb float64, r *TrialResult) DegradationPoint {
	return degradationPoint(base, lossProb, DefaultBrakingModel(), r)
}

func degradationPoint(base TrialConfig, lossProb float64, model BrakingModel, r *TrialResult) DegradationPoint {
	pt := DegradationPoint{LossProb: lossProb, Violations: len(r.Violations)}
	d := r.Platoon1.MiddleDelays()
	sm := d.Summary()
	pt.MeanDelayS, pt.MaxDelayS = sm.Mean, sm.Max

	t1 := r.Platoon1.Throughput().Summary(r.Config.Duration)
	t2 := r.Platoon2.Throughput().Summary(r.Config.Duration)
	pt.ThroughputMbps = t1.Mean + t2.Mean

	if t := r.Telemetry; t != nil {
		pt.Retransmits, _ = t.Counter("tcp/retransmits")
		pt.Injected, _ = t.Counter("fault/rx_impaired")
	}

	// Safety verdict from the worst (trailing-vehicle) indication delay, as
	// the paper's §III.E analysis frames it.
	if first, ok := r.Platoon1.TrailingDelays().First(); ok {
		pt.FirstDelayS = float64(first)
		pt.SafetyMarginM = base.SpacingM - model.MinSafeGap(base.SpeedMS, first)
		pt.Safe = pt.SafetyMarginM >= 0
	} else {
		pt.FirstDelayS = math.NaN()
		pt.SafetyMarginM = math.Inf(-1)
	}
	return pt
}

// FormatDegradationTable renders degradation points as an aligned table.
func FormatDegradationTable(points []DegradationPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %10s %10s %10s %10s %8s %9s %10s %5s\n",
		"loss", "avg_dly_s", "max_dly_s", "first_s", "mbps", "rtx", "injected", "margin_m", "safe")
	for _, p := range points {
		fmt.Fprintf(&b, "%8.3f %10.4f %10.4f %10.4f %10.4f %8d %9d %10.2f %5v\n",
			p.LossProb, p.MeanDelayS, p.MaxDelayS, p.FirstDelayS,
			p.ThroughputMbps, p.Retransmits, p.Injected, p.SafetyMarginM, p.Safe)
	}
	return b.String()
}

// DegradationCSV renders degradation points as CSV for plotting.
func DegradationCSV(points []DegradationPoint) string {
	var b strings.Builder
	b.WriteString("loss_prob,avg_delay_s,max_delay_s,first_delay_s,throughput_mbps,tcp_retransmits,injected_drops,safety_margin_m,safe\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%g,%g,%g,%g,%g,%d,%d,%g,%v\n",
			p.LossProb, p.MeanDelayS, p.MaxDelayS, p.FirstDelayS,
			p.ThroughputMbps, p.Retransmits, p.Injected, p.SafetyMarginM, p.Safe)
	}
	return b.String()
}
