// Determinism gates for causal span tracing. Two properties are pinned:
//
//  1. Observation-only: arming TrialConfig.Spans must not change a single
//     output byte — the golden digests of TestHotPathDeterminismGolden
//     (pinned with spans disarmed) must keep matching with spans armed.
//  2. Parallel-stable: the armed span NDJSON itself must be byte-identical
//     whether the runs execute on a -j1 or a -j8 worker pool (each run owns
//     its recorder and a single-threaded scheduler, so parallelism may not
//     reorder events).
//
// CI runs both under the race detector.
package vanetsim_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"vanetsim"
	"vanetsim/internal/span"
)

// spanNDJSON serializes events exactly as vanetsim.WriteSpans does.
func spanNDJSON(t *testing.T, events []vanetsim.SpanEvent) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := span.WriteNDJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSpanDeterminismObservationOnly(t *testing.T) {
	c1 := vanetsim.Trial1()
	c1.Spans = true
	c3 := vanetsim.Trial3()
	c3.Spans = true
	checkGolden(t, map[string]goldenDigests{
		"trial1-tdma":  runGoldenCase(t, c1, vanetsim.Fig5),
		"trial3-80211": runGoldenCase(t, c3, vanetsim.Fig11),
	})
}

func TestSpanDeterminismParallel(t *testing.T) {
	mk := func() []vanetsim.TrialConfig {
		c1 := vanetsim.Trial1()
		c3 := vanetsim.Trial3()
		cfgs := []vanetsim.TrialConfig{c1, c3}
		for i := range cfgs {
			cfgs[i].Spans = true
			cfgs[i].Duration = vanetsim.Seconds(30)
		}
		return cfgs
	}
	seq := vanetsim.RunTrials(mk(), 1)
	par := vanetsim.RunTrials(mk(), 8)
	for i := range seq {
		name := seq[i].Config.Name
		a := spanNDJSON(t, seq[i].Spans)
		b := spanNDJSON(t, par[i].Spans)
		if len(seq[i].Spans) == 0 {
			t.Fatalf("%s: armed run recorded no span events", name)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: span NDJSON differs between -j1 and -j8 (%d vs %d bytes)",
				name, len(a), len(b))
		}
		// The Chrome exporter must stay valid JSON and deterministic too.
		var ca, cb bytes.Buffer
		if err := span.WriteChrome(&ca, seq[i].Spans); err != nil {
			t.Fatal(err)
		}
		if err := span.WriteChrome(&cb, par[i].Spans); err != nil {
			t.Fatal(err)
		}
		if !json.Valid(ca.Bytes()) {
			t.Errorf("%s: chrome trace is not valid JSON", name)
		}
		if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
			t.Errorf("%s: chrome trace differs between -j1 and -j8", name)
		}
		// Every delivered packet must decompose: the analyzer's component
		// sums may never exceed the measured total.
		for _, bd := range vanetsim.AnalyzeSpans(seq[i].Spans) {
			sum := bd.Queueing + bd.Contention + bd.Airtime + bd.Retransmit + bd.Rerouting + bd.Other
			if bd.Total < 0 || sum > bd.Total+1e-9 {
				t.Fatalf("%s: uid %d components %v exceed total %v", name, bd.UID, sum, bd.Total)
			}
		}
	}
}
