package vanetsim

import (
	"fmt"
	"math"
	"strings"

	"vanetsim/internal/runner"
	"vanetsim/internal/stats"
	"vanetsim/internal/stats/seqstop"
)

// Replication is one independent run's headline measurements.
type Replication struct {
	Seed        uint64
	AvgDelayS   float64 // platoon-1 middle-vehicle mean one-way delay
	SteadyS     float64 // its steady-state level
	FirstS      float64 // trailing vehicle's initial-packet delay; NaN if it never received a packet
	AvgTputMbps float64 // platoon-1 average throughput
}

// Stopping-metric names for ToleranceOptions.Metrics — also the row
// labels every study report prints.
const (
	MetricDelay  = "avg delay"
	MetricSteady = "steady delay"
	MetricFirst  = "initial pkt"
	MetricTput   = "avg throughput"
)

// MetricPrecision is one stopping metric's achieved confidence interval
// and missing-sample count.
type MetricPrecision = seqstop.MetricResult

// allMetrics is the default stopping-metric set, in report order.
func allMetrics() []string {
	return []string{MetricDelay, MetricSteady, MetricFirst, MetricTput}
}

// metricUnit returns the display unit for a stopping metric.
func metricUnit(name string) string {
	if name == MetricTput {
		return "Mbps"
	}
	return "s"
}

// measure extracts one finished run's headline measurements.
//
// A run in which the trailing vehicle never receives a packet (for
// example, a duration too short for communication to start) yields a NaN
// FirstS: an explicit missing-sample marker, never a silent 0.0 s
// indication delay.
func measure(seed uint64, r *TrialResult) Replication {
	d := r.Platoon1.MiddleDelays()
	_, steady := d.SteadyState()
	firstS := math.NaN()
	if first, ok := r.Platoon1.TrailingDelays().First(); ok {
		firstS = float64(first)
	}
	return Replication{
		Seed:        seed,
		AvgDelayS:   d.Summary().Mean,
		SteadyS:     steady,
		FirstS:      firstS,
		AvgTputMbps: r.Platoon1.Throughput().Summary(r.Config.Duration).Mean,
	}
}

// sampleVector maps a replication's measurements onto the chosen
// stopping metrics, in order.
func sampleVector(metrics []string, rep Replication) []float64 {
	out := make([]float64, len(metrics))
	for j, m := range metrics {
		switch m {
		case MetricDelay:
			out[j] = rep.AvgDelayS
		case MetricSteady:
			out[j] = rep.SteadyS
		case MetricFirst:
			out[j] = rep.FirstS
		case MetricTput:
			out[j] = rep.AvgTputMbps
		}
	}
	return out
}

func validateMetrics(metrics []string) error {
	for _, m := range metrics {
		switch m {
		case MetricDelay, MetricSteady, MetricFirst, MetricTput:
		default:
			return fmt.Errorf("vanetsim: unknown stopping metric %q (valid: %q, %q, %q, %q)",
				m, MetricDelay, MetricSteady, MetricFirst, MetricTput)
		}
	}
	return nil
}

// ReplicationStudy re-runs a trial configuration across independent seeds
// and reports cross-replication confidence intervals — the methodology
// upgrade over the paper's single-run-with-batch-means analysis (batch
// means within one run cannot capture run-to-run variability).
type ReplicationStudy struct {
	Config TrialConfig
	Runs   []Replication

	DelayCI  stats.CI
	SteadyCI stats.CI
	FirstCI  stats.CI
	TputCI   stats.CI
	// FirstMissing counts replications whose trailing vehicle never
	// received a packet; FirstCI covers the observed remainder (and is
	// the explicit NaN/+Inf marker if every replication missed).
	FirstMissing int
}

// aggregate recomputes the study's confidence intervals from Runs.
func (s *ReplicationStudy) aggregate() {
	delays := make([]float64, len(s.Runs))
	steadies := make([]float64, len(s.Runs))
	firsts := make([]float64, len(s.Runs))
	tputs := make([]float64, len(s.Runs))
	for i, rep := range s.Runs {
		delays[i] = rep.AvgDelayS
		steadies[i] = rep.SteadyS
		firsts[i] = rep.FirstS
		tputs[i] = rep.AvgTputMbps
	}
	const level = 0.95
	s.DelayCI = stats.MeanCI(delays, level)
	s.SteadyCI = stats.MeanCI(steadies, level)
	s.FirstCI, s.FirstMissing = stats.MeanCIObserved(firsts, level)
	s.TputCI = stats.MeanCI(tputs, level)
}

// RunReplications executes cfg once per seed — fanning the independent
// runs across all CPUs — and aggregates 95% CIs. It returns an error if
// fewer than two seeds are given (no interval exists) or any seed
// repeats (a duplicate double-counts a run and artificially narrows
// every interval).
func RunReplications(cfg TrialConfig, seeds []uint64) (*ReplicationStudy, error) {
	return RunReplicationsPool(cfg, seeds, runner.Pool{})
}

// RunReplicationsPool is RunReplications on an explicit worker pool
// (for callers threading a `-j` flag through). Results and CIs are
// reduced in seed order, so every pool size produces identical output.
func RunReplicationsPool(cfg TrialConfig, seeds []uint64, p runner.Pool) (*ReplicationStudy, error) {
	if len(seeds) < 2 {
		return nil, fmt.Errorf("vanetsim: replication study needs at least two seeds, got %d", len(seeds))
	}
	seen := make(map[uint64]struct{}, len(seeds))
	for _, s := range seeds {
		if _, dup := seen[s]; dup {
			return nil, fmt.Errorf("vanetsim: duplicate replication seed %d: replications must be independent runs (a duplicate double-counts and artificially narrows the CIs)", s)
		}
		seen[s] = struct{}{}
	}
	runs, err := runner.Map(p, len(seeds), func(i int) (Replication, error) {
		c := cfg
		c.Seed = seeds[i]
		return measure(seeds[i], RunTrial(c)), nil
	})
	if err != nil {
		return nil, err
	}
	st := &ReplicationStudy{Config: cfg, Runs: runs}
	st.aggregate()
	return st, nil
}

// String renders the study as a compact report.
func (s *ReplicationStudy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v over %d replications (95%% CIs):\n", s.Config, len(s.Runs))
	row := func(name string, ci stats.CI, unit string, missing int) {
		fmt.Fprintf(&b, "  %-14s %.4f ± %.4f %s", name, ci.Mean, ci.HalfWidth, unit)
		if missing > 0 {
			fmt.Fprintf(&b, "  (missing in %d/%d replications)", missing, len(s.Runs))
		}
		b.WriteByte('\n')
	}
	row(MetricDelay, s.DelayCI, "s", 0)
	row(MetricSteady, s.SteadyCI, "s", 0)
	row(MetricFirst, s.FirstCI, "s", s.FirstMissing)
	row(MetricTput, s.TputCI, "Mbps", 0)
	return b.String()
}

// ToleranceOptions tunes RunReplicationsTolerance and
// RunPairedReplicationsTolerance. The zero value is ready to use: seeds
// derived from the config's own seed, all four metrics watched, 4–64
// replications in batches of 4 on a machine-sized pool.
type ToleranceOptions struct {
	// BaseSeed roots the derived seed stream (0 = the config's Seed).
	// The stream itself comes from seqstop.Seeds: deduplicated, never
	// zero, and prefix-stable, so replication i always runs the same
	// seed regardless of batch size, workers, or tolerance.
	BaseSeed uint64
	// MinReps is the smallest usable study (0 = 4; at least 2).
	MinReps int
	// MaxReps is the replication budget (0 = 64).
	MaxReps int
	// BatchSize is how many replications run between CI checks (0 = 4).
	// Execution-only: every batch size yields the identical study.
	BatchSize int
	// Metrics selects the stopping metrics — MetricDelay, MetricSteady,
	// MetricFirst, MetricTput (nil = all four). The study stops only
	// when every selected metric meets the tolerance.
	Metrics []string
	// Pool fans replications across workers; output is identical at any
	// size.
	Pool Pool
	// Progress, if non-nil, receives one line per non-final batch.
	Progress func(string)
	// Lookup, if non-nil, is consulted before a replication is
	// simulated — the service's per-replication cache. Store receives
	// every freshly simulated replication. Both may be called
	// concurrently from pool workers and must be safe for that.
	Lookup func(seed uint64) (Replication, bool)
	Store  func(Replication)
}

// ToleranceStudy is a sequential-stopping study's outcome: a
// ReplicationStudy over exactly the replications the verdict uses, plus
// the requested tolerance and the achieved precision per stopping
// metric.
type ToleranceStudy struct {
	ReplicationStudy
	// Tolerance is the requested relative half-width (0.05 = ±5%).
	Tolerance float64
	// Met reports whether every stopping metric reached the tolerance;
	// false means the MaxReps budget was exhausted, and Precision still
	// carries the achieved bounds.
	Met bool
	// Precision holds each stopping metric's achieved CI over the used
	// replications, in the order the metrics were requested.
	Precision []MetricPrecision
	// Executed counts replications actually simulated (or recalled from
	// a cache), including batch overshoot past the stopping point. It
	// varies with batch size — an execution detail for cost accounting,
	// deliberately excluded from String().
	Executed int
}

// RunReplicationsTolerance grows a replication study until every chosen
// metric's 95% CI relative half-width is at most tol, or the MaxReps
// budget is exhausted — the sequential-stopping upgrade over a fixed
// seed list ("give me this answer to ±2%"). Seeds are forked
// deterministically from the base seed, so the returned study is
// byte-identical at any pool width and any batch size; only the
// Executed count (overshoot past the stopping point) depends on
// batching.
//
// A run that arms cfg.Check and violates an invariant fails the study
// with an error: a measurement from a run that broke conservation is
// not evidence.
func RunReplicationsTolerance(cfg TrialConfig, tol float64, opts ToleranceOptions) (*ToleranceStudy, error) {
	metrics := opts.Metrics
	if metrics == nil {
		metrics = allMetrics()
	}
	if err := validateMetrics(metrics); err != nil {
		return nil, err
	}
	base := opts.BaseSeed
	if base == 0 {
		base = cfg.Seed
	}
	maxReps := opts.MaxReps
	if maxReps == 0 {
		maxReps = seqstop.DefaultMaxReps
	}
	if maxReps < 2 {
		return nil, fmt.Errorf("vanetsim: MaxReps %d < 2: no confidence interval exists", maxReps)
	}
	seeds := seqstop.Seeds(base, maxReps)
	reps := make([]Replication, maxReps)
	res, err := seqstop.Run(seqstop.Config{
		Metrics:   metrics,
		Tolerance: tol,
		MinReps:   opts.MinReps,
		MaxReps:   maxReps,
		BatchSize: opts.BatchSize,
		Pool:      opts.Pool,
		Progress:  opts.Progress,
	}, func(i int) ([]float64, error) {
		rep, err := runReplication(cfg, seeds[i], opts)
		if err != nil {
			return nil, err
		}
		reps[i] = rep
		return sampleVector(metrics, rep), nil
	})
	if err != nil {
		return nil, err
	}
	st := &ToleranceStudy{
		Tolerance: tol,
		Met:       res.Met,
		Precision: res.Metrics,
		Executed:  res.Executed,
	}
	st.Config = cfg
	st.Runs = append([]Replication(nil), reps[:res.N]...)
	st.aggregate()
	return st, nil
}

// runReplication produces one replication: from the cache hooks when
// present, otherwise by simulating.
func runReplication(cfg TrialConfig, seed uint64, opts ToleranceOptions) (Replication, error) {
	if opts.Lookup != nil {
		if rep, ok := opts.Lookup(seed); ok {
			return rep, nil
		}
	}
	c := cfg
	c.Seed = seed
	r := RunTrial(c)
	if n := len(r.Violations); n > 0 {
		return Replication{}, fmt.Errorf("vanetsim: replication seed %d: %d invariant violation(s), first: %v", seed, n, r.Violations[0])
	}
	rep := measure(seed, r)
	if opts.Store != nil {
		opts.Store(rep)
	}
	return rep, nil
}

// String renders the study with its achieved precision per stopping
// metric. Everything printed is independent of batch size and pool
// width (Executed is deliberately omitted).
func (s *ToleranceStudy) String() string {
	var b strings.Builder
	verdict := "met"
	if !s.Met {
		verdict = "NOT met (budget exhausted)"
	}
	fmt.Fprintf(&b, "%v adaptive study — tolerance ±%g%% %s after %d replications (95%% CIs):\n",
		s.Config, 100*s.Tolerance, verdict, len(s.Runs))
	for _, m := range s.Precision {
		fmt.Fprintf(&b, "  %-14s %.4f ± %.4f %-4s (achieved ±%s", m.Name, m.CI.Mean, m.CI.HalfWidth, metricUnit(m.Name), relPct(m.CI))
		if m.Missing > 0 {
			fmt.Fprintf(&b, ", missing in %d/%d replications", m.Missing, len(s.Runs))
		}
		b.WriteString(")\n")
	}
	return b.String()
}

// relPct formats a CI's relative precision as a percentage, keeping the
// non-finite markers readable.
func relPct(ci stats.CI) string {
	p := ci.RelPrecision()
	switch {
	case math.IsNaN(p):
		return "n/a (no observed samples)"
	case math.IsInf(p, 0):
		return "unbounded"
	default:
		return fmt.Sprintf("%.2f%%", 100*p)
	}
}

// PairedReplication is one seed's measurements under both arms of a
// common-random-numbers comparison: the same derived seed drives arm A
// and arm B, so their per-layer RNG streams (labelled forks of the run
// seed) match wherever the configurations share components.
type PairedReplication struct {
	Seed uint64
	A, B Replication
}

// PairedMetric is one stopping metric's paired-difference analysis.
type PairedMetric struct {
	Name string
	// MeanA and MeanB are the per-arm means over pairs where both arms
	// observed the metric.
	MeanA, MeanB float64
	// DiffCI is the 95% CI on the mean of the paired differences
	// d_i = A_i − B_i; with common random numbers its width shrinks by
	// the covariance the shared seeds induce.
	DiffCI stats.CI
	// Missing counts pairs where either arm missed the metric; DiffCI
	// covers the remaining pairs.
	Missing int
	// UnpairedHalfWidth is the half-width an independent-samples
	// (unpaired) comparison over the same replications would have
	// reported: t·sqrt(s_A² + s_B²)/√n. The ratio
	// UnpairedHalfWidth/DiffCI.HalfWidth is the CRN variance-reduction
	// factor.
	UnpairedHalfWidth float64
}

// VarianceReduction returns UnpairedHalfWidth / DiffCI.HalfWidth — how
// many times tighter the CRN paired interval is than an unpaired
// comparison of the same runs. NaN if either width is degenerate.
func (m PairedMetric) VarianceReduction() float64 {
	if !(m.DiffCI.HalfWidth > 0) || math.IsInf(m.DiffCI.HalfWidth, 1) || !(m.UnpairedHalfWidth > 0) {
		return math.NaN()
	}
	return m.UnpairedHalfWidth / m.DiffCI.HalfWidth
}

// PairedStudy is a sequential-stopping common-random-numbers comparison
// between two trial configurations.
type PairedStudy struct {
	ConfigA, ConfigB TrialConfig
	Tolerance        float64
	Met              bool
	Runs             []PairedReplication
	Diffs            []PairedMetric
	// Executed is the execution-only overshoot count (see
	// ToleranceStudy.Executed).
	Executed int
}

// RunPairedReplicationsTolerance runs a CRN paired comparison: each
// derived seed drives both configurations, and the study grows until the
// 95% CI on every chosen metric's paired difference (A − B) meets the
// relative tolerance, or the budget is exhausted. The stopping rule and
// determinism contract match RunReplicationsTolerance. opts.BaseSeed
// falls back to cfgA.Seed; opts.Lookup/Store are ignored (cache entries
// are keyed per single-arm config — the service caches arms, not pairs).
func RunPairedReplicationsTolerance(cfgA, cfgB TrialConfig, tol float64, opts ToleranceOptions) (*PairedStudy, error) {
	metrics := opts.Metrics
	if metrics == nil {
		metrics = allMetrics()
	}
	if err := validateMetrics(metrics); err != nil {
		return nil, err
	}
	base := opts.BaseSeed
	if base == 0 {
		base = cfgA.Seed
	}
	maxReps := opts.MaxReps
	if maxReps == 0 {
		maxReps = seqstop.DefaultMaxReps
	}
	if maxReps < 2 {
		return nil, fmt.Errorf("vanetsim: MaxReps %d < 2: no confidence interval exists", maxReps)
	}
	seeds := seqstop.Seeds(base, maxReps)
	pairs := make([]PairedReplication, maxReps)
	noCache := opts
	noCache.Lookup, noCache.Store = nil, nil
	res, err := seqstop.Run(seqstop.Config{
		Metrics:   metrics,
		Tolerance: tol,
		MinReps:   opts.MinReps,
		MaxReps:   maxReps,
		BatchSize: opts.BatchSize,
		Pool:      opts.Pool,
		Progress:  opts.Progress,
	}, func(i int) ([]float64, error) {
		a, err := runReplication(cfgA, seeds[i], noCache)
		if err != nil {
			return nil, err
		}
		b, err := runReplication(cfgB, seeds[i], noCache)
		if err != nil {
			return nil, err
		}
		pairs[i] = PairedReplication{Seed: seeds[i], A: a, B: b}
		va, vb := sampleVector(metrics, a), sampleVector(metrics, b)
		d := make([]float64, len(va))
		for j := range va {
			d[j] = va[j] - vb[j] // NaN if either arm missed: a pair is observed only whole
		}
		return d, nil
	})
	if err != nil {
		return nil, err
	}
	st := &PairedStudy{
		ConfigA:   cfgA,
		ConfigB:   cfgB,
		Tolerance: tol,
		Met:       res.Met,
		Runs:      append([]PairedReplication(nil), pairs[:res.N]...),
		Executed:  res.Executed,
	}
	st.Diffs = pairedMetrics(metrics, res, st.Runs)
	return st, nil
}

// pairedMetrics augments the engine's paired-difference CIs with per-arm
// means and the unpaired comparison width over the same pairs.
func pairedMetrics(metrics []string, res *seqstop.Result, runs []PairedReplication) []PairedMetric {
	out := make([]PairedMetric, len(metrics))
	for j, name := range metrics {
		pm := PairedMetric{Name: name, DiffCI: res.Metrics[j].CI, Missing: res.Metrics[j].Missing}
		var as, bs []float64
		for _, pr := range runs {
			a := sampleVector([]string{name}, pr.A)[0]
			b := sampleVector([]string{name}, pr.B)[0]
			if math.IsNaN(a) || math.IsNaN(b) {
				continue
			}
			as = append(as, a)
			bs = append(bs, b)
		}
		if n := len(as); n >= 2 {
			sa, sb := stats.Summarize(as), stats.Summarize(bs)
			pm.MeanA, pm.MeanB = sa.Mean, sb.Mean
			t := stats.TQuantile(1-(1-0.95)/2, n-1)
			pm.UnpairedHalfWidth = t * math.Sqrt(sa.Std*sa.Std+sb.Std*sb.Std) / math.Sqrt(float64(n))
		} else if n == 1 {
			pm.MeanA, pm.MeanB = as[0], bs[0]
			pm.UnpairedHalfWidth = math.Inf(1)
		}
		out[j] = pm
	}
	return out
}

// String renders the paired comparison: per-metric arm means, the paired
// CRN interval on the difference, the unpaired interval the same runs
// would have given, and the variance-reduction factor. Independent of
// batch size and pool width.
func (s *PairedStudy) String() string {
	var b strings.Builder
	verdict := "met"
	if !s.Met {
		verdict = "NOT met (budget exhausted)"
	}
	fmt.Fprintf(&b, "CRN paired study %v vs %v — tolerance ±%g%% %s after %d paired replications (95%% CIs on A−B):\n",
		s.ConfigA, s.ConfigB, 100*s.Tolerance, verdict, len(s.Runs))
	for _, m := range s.Diffs {
		unit := metricUnit(m.Name)
		fmt.Fprintf(&b, "  %-14s A %.4f  B %.4f  diff %.4f ± %.4f %-4s (achieved ±%s", m.Name, m.MeanA, m.MeanB, m.DiffCI.Mean, m.DiffCI.HalfWidth, unit, relPct(m.DiffCI))
		if m.Missing > 0 {
			fmt.Fprintf(&b, ", missing in %d/%d pairs", m.Missing, len(s.Runs))
		}
		b.WriteString(")\n")
		if vr := m.VarianceReduction(); !math.IsNaN(vr) {
			fmt.Fprintf(&b, "  %-14s unpaired would be ± %.4f %s — CRN pairing is %.2f× tighter\n", "", m.UnpairedHalfWidth, unit, vr)
		}
	}
	return b.String()
}
