package vanetsim

import (
	"fmt"
	"math"
	"strings"

	"vanetsim/internal/runner"
	"vanetsim/internal/stats"
)

// Replication is one independent run's headline measurements.
type Replication struct {
	Seed        uint64
	AvgDelayS   float64 // platoon-1 middle-vehicle mean one-way delay
	SteadyS     float64 // its steady-state level
	FirstS      float64 // trailing vehicle's initial-packet delay; NaN if it never received a packet
	AvgTputMbps float64 // platoon-1 average throughput
}

// ReplicationStudy re-runs a trial configuration across independent seeds
// and reports cross-replication confidence intervals — the methodology
// upgrade over the paper's single-run-with-batch-means analysis (batch
// means within one run cannot capture run-to-run variability).
type ReplicationStudy struct {
	Config TrialConfig
	Runs   []Replication

	DelayCI  stats.CI
	SteadyCI stats.CI
	FirstCI  stats.CI
	TputCI   stats.CI
}

// RunReplications executes cfg once per seed — fanning the independent
// runs across all CPUs — and aggregates 95% CIs. It returns an error if
// fewer than two seeds are given (no interval exists).
//
// A run in which the trailing vehicle never receives a packet (for
// example, a duration too short for communication to start) yields a NaN
// FirstS, which propagates to FirstCI: an explicit missing-sample
// signal, never a silent 0.0 s indication delay.
func RunReplications(cfg TrialConfig, seeds []uint64) (*ReplicationStudy, error) {
	return RunReplicationsPool(cfg, seeds, runner.Pool{})
}

// RunReplicationsPool is RunReplications on an explicit worker pool
// (for callers threading a `-j` flag through). Results and CIs are
// reduced in seed order, so every pool size produces identical output.
func RunReplicationsPool(cfg TrialConfig, seeds []uint64, p runner.Pool) (*ReplicationStudy, error) {
	if len(seeds) < 2 {
		return nil, fmt.Errorf("vanetsim: replication study needs at least two seeds, got %d", len(seeds))
	}
	runs, err := runner.Map(p, len(seeds), func(i int) (Replication, error) {
		c := cfg
		c.Seed = seeds[i]
		r := RunTrial(c)
		d := r.Platoon1.MiddleDelays()
		_, steady := d.SteadyState()
		firstS := math.NaN()
		if first, ok := r.Platoon1.TrailingDelays().First(); ok {
			firstS = float64(first)
		}
		return Replication{
			Seed:        seeds[i],
			AvgDelayS:   d.Summary().Mean,
			SteadyS:     steady,
			FirstS:      firstS,
			AvgTputMbps: r.Platoon1.Throughput().Summary(c.Duration).Mean,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	st := &ReplicationStudy{Config: cfg, Runs: runs}
	var delays, steadies, firsts, tputs []float64
	for _, rep := range runs {
		delays = append(delays, rep.AvgDelayS)
		steadies = append(steadies, rep.SteadyS)
		firsts = append(firsts, rep.FirstS)
		tputs = append(tputs, rep.AvgTputMbps)
	}
	const level = 0.95
	st.DelayCI = stats.MeanCI(delays, level)
	st.SteadyCI = stats.MeanCI(steadies, level)
	st.FirstCI = stats.MeanCI(firsts, level)
	st.TputCI = stats.MeanCI(tputs, level)
	return st, nil
}

// String renders the study as a compact report.
func (s *ReplicationStudy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v over %d replications (95%% CIs):\n", s.Config, len(s.Runs))
	row := func(name string, ci stats.CI, unit string) {
		fmt.Fprintf(&b, "  %-14s %.4f ± %.4f %s\n", name, ci.Mean, ci.HalfWidth, unit)
	}
	row("avg delay", s.DelayCI, "s")
	row("steady delay", s.SteadyCI, "s")
	row("initial pkt", s.FirstCI, "s")
	row("avg throughput", s.TputCI, "Mbps")
	return b.String()
}
