package vanetsim

import (
	"fmt"
	"strings"

	"vanetsim/internal/stats"
)

// Replication is one independent run's headline measurements.
type Replication struct {
	Seed        uint64
	AvgDelayS   float64 // platoon-1 middle-vehicle mean one-way delay
	SteadyS     float64 // its steady-state level
	FirstS      float64 // trailing vehicle's initial-packet delay
	AvgTputMbps float64 // platoon-1 average throughput
}

// ReplicationStudy re-runs a trial configuration across independent seeds
// and reports cross-replication confidence intervals — the methodology
// upgrade over the paper's single-run-with-batch-means analysis (batch
// means within one run cannot capture run-to-run variability).
type ReplicationStudy struct {
	Config TrialConfig
	Runs   []Replication

	DelayCI  stats.CI
	SteadyCI stats.CI
	FirstCI  stats.CI
	TputCI   stats.CI
}

// RunReplications executes cfg once per seed and aggregates 95% CIs.
// It panics if fewer than two seeds are given (no interval exists).
func RunReplications(cfg TrialConfig, seeds []uint64) *ReplicationStudy {
	if len(seeds) < 2 {
		panic("vanetsim: replication study needs at least two seeds")
	}
	st := &ReplicationStudy{Config: cfg}
	var delays, steadies, firsts, tputs []float64
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		r := RunTrial(c)
		d := r.Platoon1.MiddleDelays()
		_, steady := d.SteadyState()
		first, _ := r.Platoon1.TrailingDelays().First()
		rep := Replication{
			Seed:        seed,
			AvgDelayS:   d.Summary().Mean,
			SteadyS:     steady,
			FirstS:      float64(first),
			AvgTputMbps: r.Platoon1.Throughput().Summary(c.Duration).Mean,
		}
		st.Runs = append(st.Runs, rep)
		delays = append(delays, rep.AvgDelayS)
		steadies = append(steadies, rep.SteadyS)
		firsts = append(firsts, rep.FirstS)
		tputs = append(tputs, rep.AvgTputMbps)
	}
	const level = 0.95
	st.DelayCI = stats.MeanCI(delays, level)
	st.SteadyCI = stats.MeanCI(steadies, level)
	st.FirstCI = stats.MeanCI(firsts, level)
	st.TputCI = stats.MeanCI(tputs, level)
	return st
}

// String renders the study as a compact report.
func (s *ReplicationStudy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v over %d replications (95%% CIs):\n", s.Config, len(s.Runs))
	row := func(name string, ci stats.CI, unit string) {
		fmt.Fprintf(&b, "  %-14s %.4f ± %.4f %s\n", name, ci.Mean, ci.HalfWidth, unit)
	}
	row("avg delay", s.DelayCI, "s")
	row("steady delay", s.SteadyCI, "s")
	row("initial pkt", s.FirstCI, "s")
	row("avg throughput", s.TputCI, "Mbps")
	return b.String()
}
